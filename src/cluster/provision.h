/**
 * @file
 * Heterogeneity-aware cluster provisioning (paper §IV-C): given the
 * efficiency-tuple table, per-workload loads and per-type availability,
 * decide how many servers of each type to activate for each workload.
 *
 * Four provisioners are implemented:
 *  - HerculesProvisioner: the paper's constrained optimization
 *    (Eq. (1)–(3)) solved as an LP with an integer repair pass;
 *  - GreedyProvisioner: the state-of-the-art Paragon/Quasar-style
 *    scheduler [8,9] — each workload takes its best-ranked available
 *    servers, in arbitrary workload order;
 *  - PriorityAwareProvisioner: the §III-C refinement — workloads with
 *    the most to gain from their preferred server type allocate first;
 *  - NhProvisioner: heterogeneity-oblivious — servers assigned in
 *    arrival (seeded random) order.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/efficiency_table.h"
#include "core/profiler.h"
#include "util/rng.h"

namespace hercules::cluster {

/** Performance of one (server type, model) pair. */
struct PairPerf
{
    bool feasible = false;
    double qps = 0.0;      ///< latency-bounded throughput per server
    double power_w = 0.0;  ///< provisioned power per server
};

/** The provisioning problem instance. */
class ProvisionProblem
{
  public:
    /**
     * @param servers       server types in play.
     * @param availability  Nh per type (same order).
     * @param models        workloads in play.
     */
    ProvisionProblem(std::vector<hw::ServerType> servers,
                     std::vector<int> availability,
                     std::vector<model::ModelId> models);

    /** Build from an offline-profiled efficiency table. */
    static ProvisionProblem fromTable(
        const core::EfficiencyTable& table,
        const std::vector<hw::ServerType>& servers,
        const std::vector<model::ModelId>& models,
        const std::vector<int>& availability = {});

    /**
     * Profile the (h, m) cells and build the problem in one call: runs
     * the offline profiler — every cell fanned onto the evaluation
     * engine's thread pool (one latency-bounded search per pair) — then
     * assembles the problem from the resulting table. This is the
     * provisioning front door for callers that have no cached table.
     *
     * @param opt  profiler options; servers/models are overridden with
     *             the arguments below, and opt.search.engine (when set)
     *             supplies a shared engine + memo.
     */
    static ProvisionProblem fromProfile(
        const core::ProfilerOptions& opt,
        const std::vector<hw::ServerType>& servers,
        const std::vector<model::ModelId>& models,
        const std::vector<int>& availability = {});

    /** Set the performance of pair (h, m). */
    void setPerf(int h, int m, PairPerf perf);

    int numServers() const { return static_cast<int>(servers_.size()); }
    int numModels() const { return static_cast<int>(models_.size()); }
    const PairPerf& perf(int h, int m) const;
    int availability(int h) const { return availability_[h]; }
    hw::ServerType serverType(int h) const { return servers_[h]; }
    model::ModelId modelId(int m) const { return models_[m]; }

    /** Aggregate QPS if every server of every type served model m. */
    double totalCapacity(int m) const;

  private:
    std::vector<hw::ServerType> servers_;
    std::vector<int> availability_;
    std::vector<model::ModelId> models_;
    std::vector<PairPerf> perf_;  ///< numServers x numModels, row-major
};

/** An assignment N_{h,m} of servers to workloads. */
struct Allocation
{
    std::vector<std::vector<int>> n;  ///< [server][model]

    /** Build a zero allocation of the problem's shape. */
    static Allocation zero(const ProvisionProblem& p);

    /** @return total activated servers. */
    int activatedServers() const;

    /** @return servers of type h activated. */
    int activatedOfType(int h) const;

    /** @return total provisioned power (Eq. (1) objective). */
    double provisionedPowerW(const ProvisionProblem& p) const;

    /** @return aggregate QPS provisioned to model m. */
    double coverageQps(const ProvisionProblem& p, int m) const;

    /** @return true when loads (with over-provision rate R) are met. */
    bool satisfies(const ProvisionProblem& p,
                   const std::vector<double>& loads, double r) const;

    /** @return true when no type exceeds its availability. */
    bool withinAvailability(const ProvisionProblem& p) const;
};

/** Interface of a cluster provisioning policy. */
class Provisioner
{
  public:
    virtual ~Provisioner() = default;

    /**
     * @param p      the problem (perf + availability).
     * @param loads  current load per model (QPS).
     * @param r      over-provision rate R (fraction, e.g. 0.05).
     */
    virtual Allocation provision(const ProvisionProblem& p,
                                 const std::vector<double>& loads,
                                 double r) = 0;

    /** @return display name. */
    virtual const char* name() const = 0;
};

/** Paper Eq. (1)–(3): LP relaxation + integer repair. */
class HerculesProvisioner : public Provisioner
{
  public:
    Allocation provision(const ProvisionProblem& p,
                         const std::vector<double>& loads,
                         double r) override;
    const char* name() const override { return "Hercules"; }
};

/** Greedy best-ranked-first scheduler [8,9]. */
class GreedyProvisioner : public Provisioner
{
  public:
    Allocation provision(const ProvisionProblem& p,
                         const std::vector<double>& loads,
                         double r) override;
    const char* name() const override { return "Greedy"; }
};

/** Greedy with marginal-gain workload ordering (§III-C). */
class PriorityAwareProvisioner : public Provisioner
{
  public:
    Allocation provision(const ProvisionProblem& p,
                         const std::vector<double>& loads,
                         double r) override;
    const char* name() const override { return "Priority-aware"; }
};

/**
 * Heterogeneity-oblivious scheduler: assigns whatever servers are
 * available in a random order. The RNG advances across provision()
 * calls, so each interval sees a fresh arbitrary assignment (a fixed
 * order could coincidentally match the greedy ranking).
 */
class NhProvisioner : public Provisioner
{
  public:
    explicit NhProvisioner(uint64_t seed = 7) : rng_(seed) {}
    Allocation provision(const ProvisionProblem& p,
                         const std::vector<double>& loads,
                         double r) override;
    const char* name() const override { return "NH"; }

  private:
    Rng rng_;
};

}  // namespace hercules::cluster
