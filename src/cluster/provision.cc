#include "cluster/provision.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "cluster/lp.h"
#include "util/logging.h"
#include "util/rng.h"

namespace hercules::cluster {

ProvisionProblem::ProvisionProblem(std::vector<hw::ServerType> servers,
                                   std::vector<int> availability,
                                   std::vector<model::ModelId> models)
    : servers_(std::move(servers)), availability_(std::move(availability)),
      models_(std::move(models))
{
    if (servers_.size() != availability_.size())
        fatal("ProvisionProblem: %zu servers but %zu availabilities",
              servers_.size(), availability_.size());
    if (servers_.empty() || models_.empty())
        fatal("ProvisionProblem: empty servers or models");
    perf_.assign(servers_.size() * models_.size(), PairPerf{});
}

ProvisionProblem
ProvisionProblem::fromTable(const core::EfficiencyTable& table,
                            const std::vector<hw::ServerType>& servers,
                            const std::vector<model::ModelId>& models,
                            const std::vector<int>& availability)
{
    std::vector<int> avail = availability;
    if (avail.empty()) {
        for (hw::ServerType t : servers)
            avail.push_back(hw::serverSpec(t).availability);
    }
    ProvisionProblem p(servers, avail, models);
    for (int h = 0; h < p.numServers(); ++h) {
        for (int m = 0; m < p.numModels(); ++m) {
            const core::EfficiencyEntry* e =
                table.get(servers[static_cast<size_t>(h)],
                          models[static_cast<size_t>(m)]);
            if (e && e->feasible) {
                PairPerf perf;
                perf.feasible = true;
                perf.qps = e->qps;
                perf.power_w = e->power_w;
                p.setPerf(h, m, perf);
            }
        }
    }
    return p;
}

ProvisionProblem
ProvisionProblem::fromProfile(const core::ProfilerOptions& opt,
                              const std::vector<hw::ServerType>& servers,
                              const std::vector<model::ModelId>& models,
                              const std::vector<int>& availability)
{
    core::ProfilerOptions scoped = opt;
    scoped.servers = servers;
    scoped.models = models;
    core::EfficiencyTable table = core::offlineProfile(scoped);
    return fromTable(table, servers, models, availability);
}

void
ProvisionProblem::setPerf(int h, int m, PairPerf perf)
{
    perf_[static_cast<size_t>(h) * models_.size() +
          static_cast<size_t>(m)] = perf;
}

const PairPerf&
ProvisionProblem::perf(int h, int m) const
{
    return perf_[static_cast<size_t>(h) * models_.size() +
                 static_cast<size_t>(m)];
}

double
ProvisionProblem::totalCapacity(int m) const
{
    double cap = 0.0;
    for (int h = 0; h < numServers(); ++h) {
        if (perf(h, m).feasible)
            cap += perf(h, m).qps * availability_[static_cast<size_t>(h)];
    }
    return cap;
}

Allocation
Allocation::zero(const ProvisionProblem& p)
{
    Allocation a;
    a.n.assign(static_cast<size_t>(p.numServers()),
               std::vector<int>(static_cast<size_t>(p.numModels()), 0));
    return a;
}

int
Allocation::activatedServers() const
{
    int total = 0;
    for (const auto& row : n)
        total += std::accumulate(row.begin(), row.end(), 0);
    return total;
}

int
Allocation::activatedOfType(int h) const
{
    const auto& row = n[static_cast<size_t>(h)];
    return std::accumulate(row.begin(), row.end(), 0);
}

double
Allocation::provisionedPowerW(const ProvisionProblem& p) const
{
    double power = 0.0;
    for (int h = 0; h < p.numServers(); ++h)
        for (int m = 0; m < p.numModels(); ++m)
            power += n[static_cast<size_t>(h)][static_cast<size_t>(m)] *
                     p.perf(h, m).power_w;
    return power;
}

double
Allocation::coverageQps(const ProvisionProblem& p, int m) const
{
    double qps = 0.0;
    for (int h = 0; h < p.numServers(); ++h)
        qps += n[static_cast<size_t>(h)][static_cast<size_t>(m)] *
               p.perf(h, m).qps;
    return qps;
}

bool
Allocation::satisfies(const ProvisionProblem& p,
                      const std::vector<double>& loads, double r) const
{
    for (int m = 0; m < p.numModels(); ++m) {
        double target = loads[static_cast<size_t>(m)] * (1.0 + r);
        if (coverageQps(p, m) + 1e-9 < target)
            return false;
    }
    return true;
}

bool
Allocation::withinAvailability(const ProvisionProblem& p) const
{
    for (int h = 0; h < p.numServers(); ++h)
        if (activatedOfType(h) > p.availability(h))
            return false;
    return true;
}

namespace {

/** Greedy coverage of one model from a ranked server-type list. */
void
coverGreedy(const ProvisionProblem& p, int m, double target,
            const std::vector<int>& ranking, std::vector<int>& remaining,
            Allocation& alloc)
{
    double covered = alloc.coverageQps(p, m);
    for (int h : ranking) {
        if (covered >= target)
            break;
        const PairPerf& perf = p.perf(h, m);
        if (!perf.feasible || perf.qps <= 0.0)
            continue;
        int need = static_cast<int>(
            std::ceil((target - covered) / perf.qps));
        int take = std::min(need, remaining[static_cast<size_t>(h)]);
        if (take <= 0)
            continue;
        alloc.n[static_cast<size_t>(h)][static_cast<size_t>(m)] += take;
        remaining[static_cast<size_t>(h)] -= take;
        covered += take * perf.qps;
    }
}

/** Server-type ranking for model m by energy efficiency (QPS/W). */
std::vector<int>
rankByEfficiency(const ProvisionProblem& p, int m)
{
    std::vector<int> hs;
    for (int h = 0; h < p.numServers(); ++h)
        if (p.perf(h, m).feasible && p.perf(h, m).qps > 0.0)
            hs.push_back(h);
    std::stable_sort(hs.begin(), hs.end(), [&](int a, int b) {
        double ea = p.perf(a, m).qps / std::max(p.perf(a, m).power_w, 1e-9);
        double eb = p.perf(b, m).qps / std::max(p.perf(b, m).power_w, 1e-9);
        return ea > eb;
    });
    return hs;
}

}  // namespace

Allocation
GreedyProvisioner::provision(const ProvisionProblem& p,
                             const std::vector<double>& loads, double r)
{
    Allocation alloc = Allocation::zero(p);
    std::vector<int> remaining;
    for (int h = 0; h < p.numServers(); ++h)
        remaining.push_back(p.availability(h));

    // Each workload repeatedly claims one server of its best-ranked
    // available type, in round-robin workload order. When several
    // workloads prefer the same scarce type, the pool gets divided
    // between them without regard for who benefits most — the §III-C
    // deficiency the priority-aware and Hercules schedulers fix.
    std::vector<std::vector<int>> rankings;
    std::vector<double> covered(static_cast<size_t>(p.numModels()), 0.0);
    for (int m = 0; m < p.numModels(); ++m)
        rankings.push_back(rankByEfficiency(p, m));

    bool progress = true;
    while (progress) {
        progress = false;
        for (int m = 0; m < p.numModels(); ++m) {
            double target = loads[static_cast<size_t>(m)] * (1.0 + r);
            if (covered[static_cast<size_t>(m)] >= target)
                continue;
            for (int h : rankings[static_cast<size_t>(m)]) {
                if (remaining[static_cast<size_t>(h)] <= 0)
                    continue;
                alloc.n[static_cast<size_t>(h)][static_cast<size_t>(m)] +=
                    1;
                remaining[static_cast<size_t>(h)] -= 1;
                covered[static_cast<size_t>(m)] += p.perf(h, m).qps;
                progress = true;
                break;
            }
        }
    }
    return alloc;
}

Allocation
PriorityAwareProvisioner::provision(const ProvisionProblem& p,
                                    const std::vector<double>& loads,
                                    double r)
{
    Allocation alloc = Allocation::zero(p);
    std::vector<int> remaining;
    for (int h = 0; h < p.numServers(); ++h)
        remaining.push_back(p.availability(h));

    // Workloads that lose the most when pushed off their preferred
    // server type allocate first (marginal efficiency gain ordering).
    std::vector<int> order(static_cast<size_t>(p.numModels()));
    std::iota(order.begin(), order.end(), 0);
    auto gain = [&](int m) {
        std::vector<int> ranked = rankByEfficiency(p, m);
        if (ranked.size() < 2)
            return 1.0;
        auto eff = [&](int h) {
            return p.perf(h, m).qps / std::max(p.perf(h, m).power_w, 1e-9);
        };
        return eff(ranked[0]) / std::max(eff(ranked[1]), 1e-9);
    };
    std::stable_sort(order.begin(), order.end(),
                     [&](int a, int b) { return gain(a) > gain(b); });

    for (int m : order) {
        double target = loads[static_cast<size_t>(m)] * (1.0 + r);
        coverGreedy(p, m, target, rankByEfficiency(p, m), remaining,
                    alloc);
    }
    return alloc;
}

Allocation
NhProvisioner::provision(const ProvisionProblem& p,
                         const std::vector<double>& loads, double r)
{
    Allocation alloc = Allocation::zero(p);
    std::vector<int> remaining;
    for (int h = 0; h < p.numServers(); ++h)
        remaining.push_back(p.availability(h));

    // Heterogeneity-oblivious: a fresh random shuffle of server types
    // per workload and per call — whatever is available gets assigned.
    for (int m = 0; m < p.numModels(); ++m) {
        std::vector<int> order;
        for (int h = 0; h < p.numServers(); ++h)
            if (p.perf(h, m).feasible)
                order.push_back(h);
        for (size_t i = order.size(); i > 1; --i)
            std::swap(order[i - 1],
                      order[static_cast<size_t>(rng_.uniformInt(
                          0, static_cast<int64_t>(i) - 1))]);
        double target = loads[static_cast<size_t>(m)] * (1.0 + r);
        coverGreedy(p, m, target, order, remaining, alloc);
    }
    return alloc;
}

Allocation
HerculesProvisioner::provision(const ProvisionProblem& p,
                               const std::vector<double>& loads, double r)
{
    // Variables: x_{h,m} over feasible pairs.
    struct Var
    {
        int h, m;
    };
    std::vector<Var> vars;
    for (int h = 0; h < p.numServers(); ++h)
        for (int m = 0; m < p.numModels(); ++m)
            if (p.perf(h, m).feasible && p.perf(h, m).qps > 0.0)
                vars.push_back({h, m});

    Allocation alloc = Allocation::zero(p);
    if (vars.empty())
        return alloc;

    LpProblem lp;
    lp.c.resize(vars.size());
    // Objective: provisioned power (Eq. (1)), with a tiny per-server
    // epsilon so power-equivalent optima prefer fewer activated
    // machines (cluster capacity is the paper's second metric).
    constexpr double kServerEpsilonW = 3.0;
    for (size_t v = 0; v < vars.size(); ++v)
        lp.c[v] = p.perf(vars[v].h, vars[v].m).power_w + kServerEpsilonW;

    // Coverage: -sum_h qps * x >= load(1+R)  =>  -sum qps x <= -target.
    for (int m = 0; m < p.numModels(); ++m) {
        std::vector<double> row(vars.size(), 0.0);
        for (size_t v = 0; v < vars.size(); ++v)
            if (vars[v].m == m)
                row[v] = -p.perf(vars[v].h, m).qps;
        lp.a.push_back(std::move(row));
        lp.b.push_back(-loads[static_cast<size_t>(m)] * (1.0 + r));
    }
    // Availability: sum_m x_{h,m} <= Nh.
    for (int h = 0; h < p.numServers(); ++h) {
        std::vector<double> row(vars.size(), 0.0);
        for (size_t v = 0; v < vars.size(); ++v)
            if (vars[v].h == h)
                row[v] = 1.0;
        lp.a.push_back(std::move(row));
        lp.b.push_back(static_cast<double>(p.availability(h)));
    }

    LpResult sol = solveLp(lp);

    std::vector<int> remaining;
    for (int h = 0; h < p.numServers(); ++h)
        remaining.push_back(p.availability(h));

    if (sol.status == LpResult::Status::Optimal) {
        // Round down, then repair coverage with the most efficient
        // still-available servers.
        for (size_t v = 0; v < vars.size(); ++v) {
            int k = static_cast<int>(std::floor(sol.x[v] + 1e-6));
            k = std::min(k, remaining[static_cast<size_t>(vars[v].h)]);
            if (k > 0) {
                alloc.n[static_cast<size_t>(vars[v].h)]
                       [static_cast<size_t>(vars[v].m)] += k;
                remaining[static_cast<size_t>(vars[v].h)] -= k;
            }
        }
    }

    // Coverage repair (also the full fallback when the LP is
    // infeasible): per uncovered workload add the lowest
    // power-per-provisioned-QPS available server.
    for (int m = 0; m < p.numModels(); ++m) {
        double target = loads[static_cast<size_t>(m)] * (1.0 + r);
        double covered = alloc.coverageQps(p, m);
        while (covered + 1e-9 < target) {
            int best_h = -1;
            double best_cost = 0.0;
            for (int h = 0; h < p.numServers(); ++h) {
                const PairPerf& perf = p.perf(h, m);
                if (!perf.feasible || perf.qps <= 0.0 ||
                    remaining[static_cast<size_t>(h)] <= 0)
                    continue;
                double useful = std::min(perf.qps, target - covered);
                double cost = perf.power_w / useful;
                if (best_h < 0 || cost < best_cost) {
                    best_h = h;
                    best_cost = cost;
                }
            }
            if (best_h < 0)
                break;  // out of capacity: best effort
            alloc.n[static_cast<size_t>(best_h)]
                   [static_cast<size_t>(m)] += 1;
            remaining[static_cast<size_t>(best_h)] -= 1;
            covered += p.perf(best_h, m).qps;
        }
    }

    // Trim pass: release servers whose removal keeps coverage, highest
    // power first.
    struct Cand
    {
        int h, m;
        double power;
    };
    std::vector<Cand> cands;
    for (int h = 0; h < p.numServers(); ++h)
        for (int m = 0; m < p.numModels(); ++m)
            if (alloc.n[static_cast<size_t>(h)][static_cast<size_t>(m)] >
                0)
                cands.push_back({h, m, p.perf(h, m).power_w});
    std::stable_sort(cands.begin(), cands.end(),
                     [](const Cand& a, const Cand& b) {
                         return a.power > b.power;
                     });
    for (const Cand& c : cands) {
        double target = loads[static_cast<size_t>(c.m)] * (1.0 + r);
        while (alloc.n[static_cast<size_t>(c.h)]
                      [static_cast<size_t>(c.m)] > 0 &&
               alloc.coverageQps(p, c.m) - p.perf(c.h, c.m).qps + 1e-9 >=
                   target) {
            alloc.n[static_cast<size_t>(c.h)][static_cast<size_t>(c.m)] -=
                1;
        }
    }

    // Integer quantization can occasionally leave the repaired LP
    // solution behind the plain greedy one; the scheduler returns
    // whichever feasible integer allocation provisions less power, so
    // Hercules dominates greedy by construction.
    GreedyProvisioner greedy;
    Allocation greedy_alloc = greedy.provision(p, loads, r);
    bool lp_ok = alloc.satisfies(p, loads, r);
    bool greedy_ok = greedy_alloc.satisfies(p, loads, r);
    if (greedy_ok &&
        (!lp_ok || greedy_alloc.provisionedPowerW(p) <
                       alloc.provisionedPowerW(p)))
        return greedy_alloc;
    return alloc;
}

}  // namespace hercules::cluster
