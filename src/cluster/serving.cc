#include "cluster/serving.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "cluster/cluster_manager.h"
#include "sim/prepared.h"
#include "util/logging.h"

namespace hercules::cluster {

namespace {

/**
 * The next shedding victim among the still-active (type, service)
 * pairs in `counts`: the pair of the lowest-priority service (with
 * `priorities` empty, all services tie), and within that priority the
 * least energy-efficient (QPS/W) pair — optionally restricted to one
 * server type. Exact QPS/W ties keep the first pair in (h, m) scan
 * order, so the victim is deterministic. A zero-power pair reclaims
 * nothing when shed: it is treated as infinitely efficient, never the
 * victim. Returns {-1, -1} when nothing is active.
 */
std::pair<int, int>
worstActivePair(const ProvisionProblem& problem,
                const std::vector<std::vector<int>>& counts,
                int only_h = -1,
                const std::vector<int>& priorities = {})
{
    auto priorityOf = [&](int m) {
        return static_cast<size_t>(m) < priorities.size()
                   ? priorities[static_cast<size_t>(m)]
                   : 0;
    };
    int worst_h = -1, worst_m = -1;
    double worst_qpw = 0.0;
    bool worst_zero = true;
    for (int h = 0; h < problem.numServers(); ++h) {
        if (only_h >= 0 && h != only_h)
            continue;
        for (int m = 0; m < problem.numModels(); ++m) {
            if (counts[static_cast<size_t>(h)]
                      [static_cast<size_t>(m)] <= 0)
                continue;
            const PairPerf& perf = problem.perf(h, m);
            bool zero = perf.power_w <= 0.0;
            double qpw = zero
                             ? std::numeric_limits<double>::infinity()
                             : perf.qps / perf.power_w;
            // Victim order: any power-reclaiming pair before every
            // zero-power one (shedding the latter frees nothing, no
            // matter how low its priority); then priority ascending;
            // then QPS/W within the priority level.
            bool better;
            if (worst_h < 0)
                better = true;
            else if (zero != worst_zero)
                better = worst_zero;
            else
                better = priorityOf(m) < priorityOf(worst_m) ||
                         (priorityOf(m) == priorityOf(worst_m) &&
                          qpw < worst_qpw);
            if (better) {
                worst_h = h;
                worst_m = m;
                worst_qpw = qpw;
                worst_zero = zero;
            }
        }
    }
    return {worst_h, worst_m};
}

}  // namespace

double
powerCapAt(const std::vector<PowerCapPoint>& schedule, double cap_w,
           double t_hours)
{
    double cap = cap_w;
    for (const PowerCapPoint& p : schedule) {
        if (p.from_hour > t_hours)
            break;
        cap = std::min(cap_w, p.cap_w);
    }
    return cap;
}

bool
shedToPowerCap(const ProvisionProblem& problem,
               std::vector<std::vector<int>>& counts, double cap_w,
               double* power_w, const std::vector<int>& priorities)
{
    double power = 0.0;
    for (int h = 0; h < problem.numServers(); ++h)
        for (int m = 0; m < problem.numModels(); ++m)
            power += counts[static_cast<size_t>(h)]
                           [static_cast<size_t>(m)] *
                     problem.perf(h, m).power_w;

    bool shed = false;
    // Shed the lowest-priority service first, and within a priority
    // the least energy-efficient (type, service) pair: it contributes
    // the fewest queries per watt reclaimed.
    while (power > cap_w) {
        auto [worst_h, worst_m] =
            worstActivePair(problem, counts, -1, priorities);
        if (worst_h < 0)
            break;
        --counts[static_cast<size_t>(worst_h)]
                [static_cast<size_t>(worst_m)];
        power -= problem.perf(worst_h, worst_m).power_w;
        shed = true;
    }
    if (shed) {
        // Re-sum from the final counts: the repeated subtraction above
        // leaves floating-point residue (an empty matrix must report
        // exactly 0 W, not -0.000).
        power = 0.0;
        for (int h = 0; h < problem.numServers(); ++h)
            for (int m = 0; m < problem.numModels(); ++m)
                power += counts[static_cast<size_t>(h)]
                               [static_cast<size_t>(m)] *
                         problem.perf(h, m).power_w;
    }
    if (power_w != nullptr)
        *power_w = power;
    return shed;
}

MultiServeResult
serveTraces(const core::EfficiencyTable& table,
            const std::vector<hw::ServerType>& fleet,
            const std::vector<int>& shard_slots,
            const std::vector<ServiceSpec>& services, Provisioner& policy,
            const TraceServeOptions& opt)
{
    if (fleet.size() != shard_slots.size())
        fatal("serveTraces: %zu fleet types but %zu slot counts",
              fleet.size(), shard_slots.size());
    if (services.empty())
        fatal("serveTraces: no services");
    if (opt.horizon_hours <= 0.0 || opt.interval_hours <= 0.0)
        fatal("serveTraces: non-positive horizon/interval");
    for (size_t i = 0; i < opt.power_cap_schedule.size(); ++i) {
        const PowerCapPoint& pt = opt.power_cap_schedule[i];
        if (!std::isfinite(pt.from_hour) || pt.from_hour < 0.0)
            fatal("serveTraces: power_cap_schedule point %zu has "
                  "non-finite or negative from_hour %f",
                  i, pt.from_hour);
        if (!std::isfinite(pt.cap_w) || pt.cap_w < 0.0)
            fatal("serveTraces: power_cap_schedule point %zu has "
                  "non-finite or negative cap_w %f",
                  i, pt.cap_w);
        if (i > 0 &&
            pt.from_hour < opt.power_cap_schedule[i - 1].from_hour)
            fatal("serveTraces: power_cap_schedule not sorted by "
                  "from_hour (point %zu)",
                  i);
    }

    const size_t S = services.size();
    // Shard instances keep pointers into these: both vectors are sized
    // up front and must not reallocate once shards exist.
    std::vector<model::Model> models;
    models.reserve(S);
    std::vector<model::ModelId> model_ids;
    for (const ServiceSpec& spec : services) {
        models.push_back(model::buildModel(spec.model));
        model_ids.push_back(spec.model);
    }

    MultiServeResult out;
    out.service_capacity_qps.assign(S, 0.0);
    out.service_sla_ms.reserve(S);

    sim::ClusterSim::Options copt;
    copt.router = opt.router;
    copt.router_seed = opt.router_seed;
    copt.sla_ms = opt.sla_ms;
    copt.admission = opt.admission;
    copt.feedback = opt.feedback;
    copt.telemetry = opt.telemetry;
    // SLA resolution: QoS-class override, then the spec, then the
    // model-zoo default.
    for (size_t s = 0; s < S; ++s) {
        double sla = services[s].qos.sla_ms > 0.0 ? services[s].qos.sla_ms
                     : services[s].sla_ms > 0.0  ? services[s].sla_ms
                                                 : models[s].sla_ms;
        copt.service_sla_ms.push_back(sla);
        copt.service_class.push_back(services[s].qos);
    }
    out.service_sla_ms = copt.service_sla_ms;
    sim::ClusterSim cluster(copt);
    // A service with no feasible (type, slots) pair still exists: its
    // queries drop (and count as SLA violations) instead of erroring.
    cluster.declareServices(static_cast<int>(S));

    // ---- build the shard fleet ----------------------------------------
    // One prepared placement per feasible (type, service) pair (the
    // tuple's optimal config), shared by that pair's shards; every
    // physical slot of a type gets one shard *per service* — its
    // per-service personalities — and the provisioner's availability
    // constraint keeps the active ones within the physical count.
    std::vector<sim::PreparedWorkload> prepared;
    prepared.reserve(fleet.size() * S);
    std::vector<std::vector<std::vector<int>>> shards_by(
        fleet.size(), std::vector<std::vector<int>>(S));

    for (size_t h = 0; h < fleet.size(); ++h) {
        if (shard_slots[h] <= 0)
            continue;
        for (size_t s = 0; s < S; ++s) {
            const core::EfficiencyEntry* e =
                table.get(fleet[h], services[s].model);
            if (e == nullptr || !e->feasible)
                continue;
            prepared.push_back(sim::prepare(hw::serverSpec(fleet[h]),
                                            models[s], e->config));
            const sim::PreparedWorkload& w = prepared.back();
            for (int i = 0; i < shard_slots[h]; ++i) {
                int id = cluster.addShard(w, e->qps,
                                          static_cast<int>(s));
                shards_by[h][s].push_back(id);
                out.service_capacity_qps[s] += e->qps;
                ++out.shard_slots;
            }
        }
    }

    ProvisionProblem problem = ProvisionProblem::fromTable(
        table, fleet, model_ids, shard_slots);

    // ---- load curves, over-provision rate, merged arrival trace -------
    std::vector<workload::DiurnalLoad> loads;
    std::vector<workload::ServiceTraceSpec> trace_specs;
    for (const ServiceSpec& spec : services) {
        loads.emplace_back(spec.load);
        workload::ServiceTraceSpec ts;
        ts.load = spec.load;
        ts.sizes = spec.sizes;
        ts.pooling = spec.pooling;
        trace_specs.push_back(ts);
    }
    double r = opt.overprovision_rate;
    for (size_t s = 0; s < S; ++s)
        out.service_r.push_back(estimateOverprovisionRate(
            loads[s], opt.interval_hours, opt.horizon_hours));
    if (r < 0.0)
        r = *std::max_element(out.service_r.begin(),
                              out.service_r.end());
    out.estimated_r = r;

    workload::TraceOptions topt = opt.trace;
    topt.horizon_hours = opt.horizon_hours;
    std::vector<workload::Query> trace =
        workload::generateMultiServiceTrace(trace_specs, topt);
    out.trace_queries = trace.size();

    const double interval_s =
        opt.interval_hours * 3600.0 / topt.time_compression;
    const double horizon_s =
        opt.horizon_hours * 3600.0 / topt.time_compression;

    // ---- fault schedule -------------------------------------------------
    // Expand the spec against the physical fleet, then fan each
    // physical event out to every service personality hosted by that
    // (type, slot) server. The same timeline drives a health cursor the
    // *planner* reads: at each boundary it provisions over surviving
    // capacity only, which is what makes the loop self-heal.
    const fault::FaultSchedule fault_sched(opt.faults, shard_slots,
                                           opt.horizon_hours);
    std::vector<sim::HealthEvent> health_events;
    for (const fault::FaultEvent& e : fault_sched.events()) {
        const double t_s = e.t_hours * 3600.0 / topt.time_compression;
        for (size_t s = 0; s < S; ++s) {
            const auto& ids =
                shards_by[static_cast<size_t>(e.fleet_index)][s];
            if (static_cast<size_t>(e.slot) < ids.size())
                health_events.push_back(sim::HealthEvent{
                    t_s, ids[static_cast<size_t>(e.slot)], e.state,
                    e.slowdown});
        }
    }
    cluster.scheduleHealth(std::move(health_events));
    // Physical health per (type, slot), advanced inside plan().
    std::vector<std::vector<fault::HealthState>> phys(fleet.size());
    for (size_t h = 0; h < fleet.size(); ++h)
        phys[h].assign(static_cast<size_t>(std::max(shard_slots[h], 0)),
                       fault::HealthState::Healthy);
    size_t fault_cursor = 0;

    // ---- per-interval joint provisioning plan --------------------------
    // Per-service shedding priorities (QoS classes) and, for
    // throughput-tier services, the horizon-mean forecast demand they
    // are provisioned to instead of the instantaneous curve.
    std::vector<int> priorities;
    bool any_priority = false;
    for (const ServiceSpec& spec : services) {
        priorities.push_back(spec.qos.priority);
        any_priority = any_priority || spec.qos.priority != 0;
    }
    if (!any_priority)
        priorities.clear();  // pure-QPS/W shedding, the pre-QoS order
    std::vector<double> mean_forecast(S, 0.0);
    for (size_t s = 0; s < S; ++s) {
        OnlineStats acc;
        for (double t = 0.0; t < opt.horizon_hours;
             t += opt.interval_hours)
            acc.add(loads[s].forecastAt(t));
        mean_forecast[s] = acc.mean();
    }

    std::vector<int> prev_active;
    bool first_interval = true;
    auto plan = [&](int k, double) -> sim::IntervalPlan {
        double t_hours = static_cast<double>(k) * opt.interval_hours;
        // Advance the physical health cursor to this boundary. The
        // simulator applies the same events (<= t0) before this plan
        // runs, so planner and fleet agree on who is alive.
        while (fault_cursor < fault_sched.events().size() &&
               fault_sched.events()[fault_cursor].t_hours <= t_hours) {
            const fault::FaultEvent& e =
                fault_sched.events()[fault_cursor++];
            phys[static_cast<size_t>(e.fleet_index)]
                [static_cast<size_t>(e.slot)] = e.state;
        }
        // Surviving per-type availability: failed servers are invisible
        // to the provisioner, so it re-provisions replacements from the
        // slots (of any type) still alive — the self-healing step. A
        // *degraded* server still counts as capacity: stragglers are
        // the feedback router's problem, not the planner's.
        std::vector<int> surviving(fleet.size(), 0);
        bool any_failed = false;
        for (size_t h = 0; h < fleet.size(); ++h) {
            for (fault::HealthState hs : phys[h])
                if (hs != fault::HealthState::Failed)
                    ++surviving[h];
            any_failed =
                any_failed ||
                surviving[h] != static_cast<int>(phys[h].size());
        }
        std::optional<ProvisionProblem> degraded_problem;
        if (any_failed) {
            degraded_problem.emplace(fleet, surviving, model_ids);
            for (int h = 0; h < problem.numServers(); ++h)
                for (int m = 0; m < problem.numModels(); ++m)
                    degraded_problem->setPerf(h, m, problem.perf(h, m));
        }
        const ProvisionProblem& prob =
            degraded_problem ? *degraded_problem : problem;
        std::vector<double> interval_loads;
        for (size_t s = 0; s < S; ++s) {
            // The provisioner plans on the *forecast* curve (an
            // unforecast surge window is invisible to it). Throughput-
            // tier services are deadline-relaxed: provisioned to the
            // horizon-mean demand with the ramp headroom cancelled —
            // their peak backlog rides through the adjacent troughs —
            // while latency-tier services keep the full (1 + R)
            // headroom on the instantaneous forecast.
            double fl = services[s].qos.tier == qos::Tier::Throughput
                            ? mean_forecast[s] / (1.0 + r)
                            : loads[s].forecastAt(t_hours);
            interval_loads.push_back(fl);
        }
        Allocation alloc = policy.provision(prob, interval_loads, r);

        sim::IntervalPlan p;
        // Healthy personality count per (type, service): the slots of
        // the type that are not failed and host that personality.
        auto healthyCount = [&](size_t h, size_t s) {
            int n = 0;
            for (size_t i = 0; i < shards_by[h][s].size(); ++i)
                if (phys[h][i] != fault::HealthState::Failed)
                    ++n;
            return n;
        };
        std::vector<std::vector<int>> counts(
            fleet.size(), std::vector<int>(S, 0));
        for (size_t h = 0; h < fleet.size(); ++h)
            for (size_t s = 0; s < S; ++s)
                counts[h][s] =
                    std::min(alloc.n[h][s], healthyCount(h, s));
        // Enforce the physical per-type availability: Provisioner is
        // an open interface, so an over-allocating policy must not
        // activate more shard personalities than (surviving) physical
        // servers. Trim the least energy-efficient pair of the type
        // first.
        for (size_t h = 0; h < fleet.size(); ++h) {
            int total = 0;
            for (size_t s = 0; s < S; ++s)
                total += counts[h][s];
            while (total > surviving[h]) {
                auto [worst_h, worst_m] = worstActivePair(
                    prob, counts, static_cast<int>(h), priorities);
                if (worst_h < 0)
                    break;
                --counts[h][static_cast<size_t>(worst_m)];
                --total;
            }
        }
        // Enforce the global power cap across all services: lowest
        // priority shed first, then least QPS/W. The cap may step over
        // the horizon (power_cap_schedule, e.g. an evening brownout).
        // Replacement shards activated after a crash live under the
        // same cap as everything else — self-healing cannot overdraw.
        const double cap_w = powerCapAt(opt.power_cap_schedule,
                                        opt.power_cap_w, t_hours);
        double power = 0.0;
        p.power_capped =
            shedToPowerCap(prob, counts, cap_w, &power, priorities);
        // Activate the first counts[h][s] *healthy* slots; with no
        // faults this is slots 0..counts-1, the pre-fault order.
        for (size_t h = 0; h < fleet.size(); ++h)
            for (size_t s = 0; s < S; ++s) {
                int need = counts[h][s];
                for (size_t i = 0;
                     i < shards_by[h][s].size() && need > 0; ++i) {
                    if (phys[h][i] == fault::HealthState::Failed)
                        continue;
                    p.active.push_back(shards_by[h][s][i]);
                    --need;
                }
            }
        p.provisioned_power_w = power;
        p.budget_power_w = std::isfinite(cap_w) ? cap_w : power;

        if (!first_interval && p.active != prev_active)
            ++out.reprovisions;
        first_interval = false;
        prev_active = p.active;
        return p;
    };

    out.sim = cluster.run(trace, interval_s, plan, horizon_s);
    return out;
}

TraceServeResult
serveTrace(const core::EfficiencyTable& table,
           const std::vector<hw::ServerType>& fleet,
           const std::vector<int>& shard_slots, model::ModelId model_id,
           const workload::DiurnalConfig& load_cfg, Provisioner& policy,
           const TraceServeOptions& opt)
{
    ServiceSpec spec;
    spec.model = model_id;
    spec.load = load_cfg;
    spec.sla_ms = opt.sla_ms;
    spec.sizes = opt.trace.sizes;
    spec.pooling = opt.trace.pooling;

    MultiServeResult multi =
        serveTraces(table, fleet, shard_slots, {spec}, policy, opt);

    TraceServeResult out;
    out.sim = std::move(multi.sim);
    out.estimated_r = multi.estimated_r;
    out.trace_queries = multi.trace_queries;
    out.reprovisions = multi.reprovisions;
    out.shard_slots = multi.shard_slots;
    out.fleet_capacity_qps = multi.service_capacity_qps[0];
    return out;
}

}  // namespace hercules::cluster
