#include "cluster/serving.h"

#include <algorithm>
#include <cmath>

#include "cluster/cluster_manager.h"
#include "sim/prepared.h"
#include "util/logging.h"

namespace hercules::cluster {

TraceServeResult
serveTrace(const core::EfficiencyTable& table,
           const std::vector<hw::ServerType>& fleet,
           const std::vector<int>& shard_slots, model::ModelId model_id,
           const workload::DiurnalConfig& load_cfg, Provisioner& policy,
           const TraceServeOptions& opt)
{
    if (fleet.size() != shard_slots.size())
        fatal("serveTrace: %zu fleet types but %zu slot counts",
              fleet.size(), shard_slots.size());
    if (opt.horizon_hours <= 0.0 || opt.interval_hours <= 0.0)
        fatal("serveTrace: non-positive horizon/interval");

    model::Model m = model::buildModel(model_id);

    // ---- build the shard fleet ----------------------------------------
    // One prepared placement per feasible type (the tuple's optimal
    // config), shared by that type's shards. The vector is sized up
    // front: ServerInstance keeps a reference into it.
    std::vector<sim::PreparedWorkload> prepared;
    prepared.reserve(fleet.size());
    std::vector<std::vector<int>> shards_by_type(fleet.size());

    sim::ClusterSim::Options copt;
    copt.router = opt.router;
    copt.router_seed = opt.router_seed;
    copt.sla_ms = opt.sla_ms;
    sim::ClusterSim cluster(copt);

    TraceServeResult out;
    for (size_t h = 0; h < fleet.size(); ++h) {
        const core::EfficiencyEntry* e = table.get(fleet[h], model_id);
        if (e == nullptr || !e->feasible || shard_slots[h] <= 0)
            continue;
        prepared.push_back(
            sim::prepare(hw::serverSpec(fleet[h]), m, e->config));
        const sim::PreparedWorkload& w = prepared.back();
        for (int i = 0; i < shard_slots[h]; ++i) {
            int id = cluster.addShard(w, e->qps);
            shards_by_type[h].push_back(id);
            out.fleet_capacity_qps += e->qps;
            ++out.shard_slots;
        }
    }

    ProvisionProblem problem = ProvisionProblem::fromTable(
        table, fleet, {model_id}, shard_slots);

    // ---- load curve, over-provision rate, arrival trace ----------------
    workload::DiurnalLoad load(load_cfg);
    double r = opt.overprovision_rate;
    if (r < 0.0)
        r = estimateOverprovisionRate(load, opt.interval_hours,
                                      opt.horizon_hours);
    out.estimated_r = r;

    workload::TraceOptions topt = opt.trace;
    topt.horizon_hours = opt.horizon_hours;
    workload::TraceGenerator gen(load, topt);
    std::vector<workload::Query> trace = gen.generate();
    out.trace_queries = trace.size();

    const double interval_s =
        opt.interval_hours * 3600.0 / topt.time_compression;

    // ---- per-interval provisioning plan --------------------------------
    std::vector<int> prev_active;
    bool first_interval = true;
    auto plan = [&](int k, double) -> sim::IntervalPlan {
        double t_hours = static_cast<double>(k) * opt.interval_hours;
        std::vector<double> loads = {load.loadAt(t_hours)};
        Allocation alloc = policy.provision(problem, loads, r);

        sim::IntervalPlan p;
        std::vector<int> counts(fleet.size(), 0);
        double power = 0.0;
        for (size_t h = 0; h < fleet.size(); ++h) {
            const PairPerf& perf = problem.perf(static_cast<int>(h), 0);
            if (!perf.feasible)
                continue;
            counts[h] = std::min(
                alloc.n[h][0],
                static_cast<int>(shards_by_type[h].size()));
            power += counts[h] * perf.power_w;
        }
        // Enforce the global power cap: shed the least
        // energy-efficient servers until the allocation fits.
        while (power > opt.power_cap_w) {
            int worst = -1;
            double worst_qpw = 0.0;
            for (size_t h = 0; h < fleet.size(); ++h) {
                if (counts[h] <= 0)
                    continue;
                const PairPerf& perf =
                    problem.perf(static_cast<int>(h), 0);
                double qpw = perf.power_w > 0.0 ? perf.qps / perf.power_w
                                                : 0.0;
                if (worst < 0 || qpw < worst_qpw) {
                    worst = static_cast<int>(h);
                    worst_qpw = qpw;
                }
            }
            if (worst < 0)
                break;
            --counts[static_cast<size_t>(worst)];
            power -=
                problem.perf(worst, 0).power_w;
            p.power_capped = true;
        }
        for (size_t h = 0; h < fleet.size(); ++h)
            for (int i = 0; i < counts[h]; ++i)
                p.active.push_back(shards_by_type[h][static_cast<size_t>(i)]);
        p.provisioned_power_w = power;
        p.budget_power_w =
            std::isfinite(opt.power_cap_w) ? opt.power_cap_w : power;

        if (!first_interval && p.active != prev_active)
            ++out.reprovisions;
        first_interval = false;
        prev_active = p.active;
        return p;
    };

    out.sim = cluster.run(trace, interval_s, plan, gen.simSeconds());
    return out;
}

}  // namespace hercules::cluster
