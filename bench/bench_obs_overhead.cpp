/**
 * @file
 * Telemetry overhead: the three_service_phase_shift 24h replay run
 * three ways over one shared efficiency table —
 *
 *  - OFF:     observability disabled (the baseline every other bench
 *             and test runs at);
 *  - METRICS: metrics registry sampling + export, no per-query trace;
 *  - TRACE:   full per-query tracing (sample rate 1.0) + metrics.
 *
 * Two gates:
 *
 *  1. Determinism — all three arms must report bit-identical simulated
 *     statistics (completed/dropped/rejected counts, p99, violation
 *     rate, power). Telemetry observes the DES; it must never perturb
 *     it. Any mismatch exits non-zero.
 *  2. Overhead — the TRACE arm's serve wall time must stay within
 *     kMaxTraceOverhead of OFF. Skipped when the baseline runs too
 *     fast for a stable ratio (kMinGateWallMs).
 *
 * Results land in BENCH_obs.json. Fast mode (HERCULES_BENCH_FAST=1):
 * 6h horizon, reduced profiling probes.
 */
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace hercules;

namespace {

/** TRACE wall budget as a multiple of the OFF arm's wall time. */
constexpr double kMaxTraceOverhead = 1.15;
/** Below this OFF wall time the overhead ratio is noise: skip gate. */
constexpr double kMinGateWallMs = 200.0;

struct ArmResult
{
    std::string name;
    double serve_wall_ms = 0.0;
    size_t completed = 0;
    size_t dropped = 0;
    size_t rejected = 0;
    size_t sla_violations = 0;
    double sla_violation_rate = 0.0;
    double p99_ms = 0.0;
    double avg_provisioned_w = 0.0;
    double avg_consumed_w = 0.0;
    uint64_t des_events = 0;
    double des_events_per_sec = 0.0;
    size_t trace_records = 0;
};

/** Count newline-terminated records of a JSONL file; 0 when absent. */
size_t
countLines(const std::string& path)
{
    FILE* f = std::fopen(path.c_str(), "r");
    if (f == nullptr)
        return 0;
    size_t n = 0;
    int c;
    while ((c = std::fgetc(f)) != EOF)
        if (c == '\n')
            ++n;
    std::fclose(f);
    return n;
}

ArmResult
runArm(const std::string& name, const scenario::ScenarioSpec& spec,
       const core::EfficiencyTable& table)
{
    scenario::ScenarioResult r = scenario::run(spec, &table);
    ArmResult out;
    out.name = name;
    out.serve_wall_ms = r.serve_wall_ms;
    out.completed = r.serve.sim.completed;
    out.dropped = r.serve.sim.dropped;
    out.rejected = r.serve.sim.rejected;
    out.sla_violations = r.serve.sim.sla_violations;
    out.sla_violation_rate = r.serve.sim.sla_violation_rate;
    out.p99_ms = r.serve.sim.p99_ms;
    out.avg_provisioned_w = r.serve.sim.avg_provisioned_power_w;
    out.avg_consumed_w = r.serve.sim.avg_consumed_power_w;
    out.des_events = r.serve.sim.des.events_executed;
    out.des_events_per_sec = r.serve.sim.des.events_per_sec;
    if (!spec.observability.trace_file.empty())
        out.trace_records = countLines(spec.observability.trace_file);
    return out;
}

/** @return mismatch description, empty when the arms agree exactly. */
std::string
compareArms(const ArmResult& a, const ArmResult& b)
{
    char buf[160];
    auto fail = [&](const char* what) {
        std::snprintf(buf, sizeof(buf), "%s differs between %s and %s",
                      what, a.name.c_str(), b.name.c_str());
        return std::string(buf);
    };
    if (a.completed != b.completed)
        return fail("completed");
    if (a.dropped != b.dropped)
        return fail("dropped");
    if (a.rejected != b.rejected)
        return fail("rejected");
    if (a.sla_violations != b.sla_violations)
        return fail("sla_violations");
    if (a.p99_ms != b.p99_ms)
        return fail("p99_ms");
    if (a.sla_violation_rate != b.sla_violation_rate)
        return fail("sla_violation_rate");
    if (a.avg_provisioned_w != b.avg_provisioned_w)
        return fail("avg_provisioned_power_w");
    if (a.avg_consumed_w != b.avg_consumed_w)
        return fail("avg_consumed_power_w");
    if (a.des_events != b.des_events)
        return fail("des_events_executed");
    return "";
}

void
writeJson(const std::vector<ArmResult>& arms, bool gated,
          double overhead_frac)
{
    const char* path = "BENCH_obs.json";
    FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot open %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    bench::writeJsonProvenance(f);
    std::fprintf(f, "  \"experiment\": \"obs_overhead\",\n");
    std::fprintf(f, "  \"scenario\": \"three_service_phase_shift\",\n");
    std::fprintf(f, "  \"bit_identical\": true,\n");
    std::fprintf(f, "  \"overhead_gated\": %s,\n",
                 gated ? "true" : "false");
    std::fprintf(f, "  \"trace_overhead_frac\": %.4f,\n", overhead_frac);
    std::fprintf(f, "  \"arms\": [\n");
    for (size_t i = 0; i < arms.size(); ++i) {
        const ArmResult& a = arms[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"name\": \"%s\",\n", a.name.c_str());
        std::fprintf(f, "      \"serve_wall_ms\": %.1f,\n",
                     a.serve_wall_ms);
        std::fprintf(f, "      \"completed\": %zu,\n", a.completed);
        std::fprintf(f, "      \"dropped\": %zu,\n", a.dropped);
        std::fprintf(f, "      \"rejected\": %zu,\n", a.rejected);
        std::fprintf(f, "      \"sla_violation_rate\": %.6f,\n",
                     a.sla_violation_rate);
        std::fprintf(f, "      \"p99_ms\": %.4f,\n", a.p99_ms);
        std::fprintf(f, "      \"des_events_executed\": %llu,\n",
                     static_cast<unsigned long long>(a.des_events));
        std::fprintf(f, "      \"des_events_per_sec\": %.0f,\n",
                     a.des_events_per_sec);
        std::fprintf(f, "      \"trace_records\": %zu\n",
                     a.trace_records);
        std::fprintf(f, "    }%s\n", i + 1 < arms.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

}  // namespace

int
main()
{
    bench::banner("Telemetry overhead",
                  "three_service_phase_shift replayed off / "
                  "metrics-only / full-tracing over one shared table");

    scenario::ScenarioSpec base =
        bench::loadScenario("three_service_phase_shift.scn");
    if (bench::fastMode()) {
        base.serve.horizon_hours = 6.0;
        base.profile.table_cache = "hercules_efficiency_obs_fast.csv";
        base.profile.num_queries = 250;
        base.profile.warmup_queries = 50;
        base.profile.bisect_iters = 4;
    }

    core::EfficiencyTable table = scenario::profileTable(base);

    scenario::ScenarioSpec off = base;

    scenario::ScenarioSpec metrics = base;
    metrics.observability.metrics_file = "obs_overhead_metrics.csv";

    scenario::ScenarioSpec trace = base;
    trace.observability.metrics_file = "obs_overhead_metrics.csv";
    trace.observability.trace_file = "obs_overhead_trace.jsonl";
    trace.observability.sample_rate = 1.0;

    std::vector<ArmResult> arms;
    arms.push_back(runArm("off", off, table));
    arms.push_back(runArm("metrics", metrics, table));
    arms.push_back(runArm("trace", trace, table));

    TablePrinter t({"Arm", "Wall (ms)", "Completed", "p99 (ms)",
                    "Viol rate", "Trace recs"});
    for (const ArmResult& a : arms)
        t.addRow({a.name, fmtDouble(a.serve_wall_ms, 1),
                  std::to_string(a.completed), fmtDouble(a.p99_ms, 2),
                  fmtPercent(a.sla_violation_rate, 2),
                  std::to_string(a.trace_records)});
    t.print();

    // Gate 1: telemetry must not perturb the simulation.
    for (size_t i = 1; i < arms.size(); ++i) {
        std::string diff = compareArms(arms[0], arms[i]);
        if (!diff.empty()) {
            std::fprintf(stderr,
                         "FAIL: telemetry perturbed the simulation: "
                         "%s\n",
                         diff.c_str());
            return 1;
        }
    }
    std::printf("\nall arms bit-identical on simulated statistics\n");

    // Gate 2: full tracing stays cheap. The ratio is only meaningful
    // once the baseline wall time dominates timer noise.
    double base_wall = arms[0].serve_wall_ms;
    double trace_wall = arms[2].serve_wall_ms;
    double overhead =
        base_wall > 0.0 ? trace_wall / base_wall - 1.0 : 0.0;
    bool gated = base_wall >= kMinGateWallMs;
    if (gated) {
        std::printf("tracing overhead %.1f%% (budget %.0f%%)\n",
                    overhead * 100.0, (kMaxTraceOverhead - 1.0) * 100.0);
        if (trace_wall > base_wall * kMaxTraceOverhead) {
            std::fprintf(stderr,
                         "FAIL: tracing overhead %.1f%% exceeds "
                         "%.0f%% budget (off %.1f ms, trace %.1f ms)\n",
                         overhead * 100.0,
                         (kMaxTraceOverhead - 1.0) * 100.0, base_wall,
                         trace_wall);
            return 1;
        }
    } else {
        std::printf("baseline wall %.1f ms < %.0f ms: overhead gate "
                    "skipped (ratio would be timer noise)\n",
                    base_wall, kMinGateWallMs);
    }

    writeJson(arms, gated, overhead);
    return 0;
}
