/**
 * @file
 * Fig 16 — model evolution: traffic migrates linearly from the DLRM
 * workloads to the higher-complexity DIN / DIEN / MT-WnD models.
 *  (a) the synthetic mix per update cycle;
 *  (b) peak/average provisioned power on the CPU-only cluster vs the
 *      accelerated cluster across the evolution;
 *  (c)(d) Day-D1 vs Day-D2 capacity snapshots (20% of traffic moved).
 *
 * Reproduction targets: on the CPU-only cluster, D2 needs ~2.27x the
 * capacity and ~1.77x the power of D1 at peak; deploying the
 * accelerated servers recovers 22-52% of peak provisioned power during
 * the evolution.
 */

#include "bench/bench_common.h"
#include "cluster/evolution.h"
#include "core/profiler.h"
#include "util/table.h"

using namespace hercules;

namespace {

core::EfficiencyTable
loadOrProfile()
{
    if (auto cached =
            bench::tryLoadCachedTable(bench::efficiencyCachePath()))
        return *cached;
    std::printf("(profiling the full catalog — run "
                "bench_fig15_server_arch first to avoid this)\n\n");
    core::ProfilerOptions popt;
    popt.search = bench::benchSearchOptions();
    core::EfficiencyTable t = core::offlineProfile(popt);
    t.writeCsv(bench::efficiencyCachePath());
    return t;
}

}  // namespace

int
main()
{
    bench::banner("Figure 16", "Model evolution and cluster capacity");

    core::EfficiencyTable table = loadOrProfile();
    auto services = cluster::defaultEvolutionServices();
    // Size the service peaks against the simulated fleet (see
    // bench_common.h) so Day-D1 fits the CPU-only cluster comfortably.
    bench::scaleEvolutionServices(services, table);

    const std::vector<hw::ServerType> cpu_only = {hw::ServerType::T1,
                                                  hw::ServerType::T2};
    const std::vector<hw::ServerType> accelerated =
        hw::allServerTypes();

    cluster::ClusterManagerOptions copt;
    cluster::HerculesProvisioner policy;

    std::printf("-- Fig 16(a)(b): evolution stages --\n");
    // The CPU-only column is a *projection* (unbounded T1/T2 supply),
    // exactly as the paper projects the 5.4x capacity / 3.54x power
    // growth the baseline fleet would need by the end of evolution.
    TablePrinter t({"Stage", "Legacy %", "CPU-only proj. peak kW",
                    "CPU-only proj. srv", "Accel peak kW",
                    "Accel avg kW", "Peak saving vs proj."});
    std::vector<double> stages = bench::fastMode()
                                     ? std::vector<double>{0.0, 0.5, 1.0}
                                     : std::vector<double>{0.0, 0.2, 0.4,
                                                           0.6, 0.8, 1.0};
    double proj_first_peak_kw = 0.0, proj_last_peak_kw = 0.0;
    int proj_first_srv = 0, proj_last_srv = 0;
    for (double s : stages) {
        auto workloads = cluster::evolutionWorkloads(services, s);
        auto models = cluster::evolutionModels(services, s);
        auto p_proj = cluster::ProvisionProblem::fromTable(
            table, cpu_only, models, {1'000'000, 1'000'000});
        auto p_acc = cluster::ProvisionProblem::fromTable(
            table, accelerated, models);
        auto r_proj = cluster::runCluster(p_proj, workloads, policy, copt);
        auto r_acc = cluster::runCluster(p_acc, workloads, policy, copt);
        if (s == stages.front()) {
            proj_first_peak_kw = r_proj.peak_power_w / 1e3;
            proj_first_srv = r_proj.peak_servers;
        }
        if (s == stages.back()) {
            proj_last_peak_kw = r_proj.peak_power_w / 1e3;
            proj_last_srv = r_proj.peak_servers;
        }
        t.addRow({fmtDouble(s, 1), fmtPercent(1.0 - s, 0),
                  fmtDouble(r_proj.peak_power_w / 1e3, 1),
                  std::to_string(r_proj.peak_servers),
                  fmtDouble(r_acc.peak_power_w / 1e3, 1),
                  fmtDouble(r_acc.avg_power_w / 1e3, 1),
                  fmtPercent(1.0 - r_acc.peak_power_w /
                                       std::max(r_proj.peak_power_w, 1.0),
                             1)});
    }
    t.print();
    std::printf("end-of-evolution projection on CPU-only servers: "
                "capacity x%.2f, power x%.2f\n(paper projects 5.4x / "
                "3.54x); accelerated-cluster saving over the projection "
                "is\nthe Fig 16(b) story (paper: 22-52%% at peak).\n\n",
                static_cast<double>(proj_last_srv) /
                    std::max(proj_first_srv, 1),
                proj_last_peak_kw / std::max(proj_first_peak_kw, 1e-9));

    // ---- (c)(d) Day-D1 vs Day-D2 snapshots on the CPU-only cluster ---
    std::printf("-- Fig 16(c)(d): Day-D1 (stage 0) vs Day-D2 (stage 0.2) "
                "on the CPU-only cluster --\n");
    auto w1 = cluster::evolutionWorkloads(services, 0.0);
    auto w2 = cluster::evolutionWorkloads(services, 0.2);
    auto p1 = cluster::ProvisionProblem::fromTable(
        table, cpu_only, cluster::evolutionModels(services, 0.0));
    auto p2 = cluster::ProvisionProblem::fromTable(
        table, cpu_only, cluster::evolutionModels(services, 0.2));
    auto r1 = cluster::runCluster(p1, w1, policy, copt);
    auto r2 = cluster::runCluster(p2, w2, policy, copt);

    TablePrinter td({"Hour", "D1 servers", "D1 kW", "D2 servers",
                     "D2 kW"});
    for (size_t i = 0; i < r1.intervals.size(); i += 4) {
        td.addRow({fmtDouble(r1.intervals[i].t_hours, 1),
                   std::to_string(r1.intervals[i].activated_servers),
                   fmtDouble(r1.intervals[i].provisioned_power_w / 1e3,
                             1),
                   std::to_string(r2.intervals[i].activated_servers),
                   fmtDouble(r2.intervals[i].provisioned_power_w / 1e3,
                             1)});
    }
    td.print();
    std::printf("\nD2/D1 capacity: peak %.2fx (paper 2.27x), avg %.2fx "
                "(paper 2.09x)\nD2/D1 power:    peak %.2fx (paper 1.77x), "
                "avg %.2fx (paper 1.64x)\n",
                static_cast<double>(r2.peak_servers) /
                    std::max(r1.peak_servers, 1),
                r2.avg_servers / std::max(r1.avg_servers, 1.0),
                r2.peak_power_w / std::max(r1.peak_power_w, 1.0),
                r2.avg_power_w / std::max(r1.avg_power_w, 1.0));
    if (r1.unsatisfied_intervals || r2.unsatisfied_intervals)
        std::printf("note: %d/%d intervals exceeded CPU-only fleet "
                    "capacity (best-effort allocation)\n",
                    r1.unsatisfied_intervals + r2.unsatisfied_intervals,
                    static_cast<int>(r1.intervals.size() +
                                     r2.intervals.size()));
    return 0;
}
