/**
 * @file
 * Fig 1 (left) — compute vs memory footprint per query across the six
 * models. Reproduction target (shape): DLRM-RMC1/RMC2 land in the
 * memory-dominated region (low arithmetic intensity), DLRM-RMC3 /
 * MT-WnD / DIN / DIEN in the compute-dominated region; the spread spans
 * one to two orders of magnitude on both axes.
 */
#include "bench/bench_common.h"
#include "model/footprint.h"
#include "util/table.h"
#include "workload/querygen.h"

using namespace hercules;

int
main()
{
    bench::banner("Figure 1 (left)",
                  "Avg compute FLOPs vs memory bytes per query");

    // Mean query size of the Fig 2(b) distribution.
    workload::QueryGenerator gen(1000.0, 42);
    double mean_size = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        mean_size += gen.next().size;
    mean_size /= n;
    std::printf("mean query size: %.1f items\n\n", mean_size);

    TablePrinter t({"Model", "MFLOPs/query", "MB/query", "KB PCIe/item",
                    "FLOP per DRAM byte", "Region"});
    for (model::ModelId id : model::allModels()) {
        model::Model m = model::buildModel(id);
        model::ModelFootprint f = model::analyzeModel(m);
        double mflops = f.flops_per_item * mean_size / 1e6;
        double mbytes = f.dram_bytes_per_item * mean_size / 1e6;
        const char* region =
            f.intensity() < 10.0 ? "memory-dominated" : "compute-dominated";
        t.addRow({model::modelName(id), fmtDouble(mflops, 1),
                  fmtDouble(mbytes, 2),
                  fmtDouble(f.input_bytes_per_item / 1e3, 2),
                  fmtDouble(f.intensity(), 1), region});
    }
    t.print();

    std::printf("\nShape check vs paper: RMC1/RMC2 memory-dominated, "
                "others compute-dominated;\nRMC2 has the highest memory "
                "traffic, MT-WnD the highest compute.\n");
    return 0;
}
