/**
 * @file
 * Fig 5 — operator-dependency idling: per-thread schedules of
 * DLRM-RMC1 with 1 vs 2 op-workers, and the idle-cycle fraction of all
 * six models with 1-4 parallel operator workers (batch 256).
 * Reproduction target: idle cycles grow with worker count, spanning
 * roughly 25-74% at 2-4 workers.
 */
#include <algorithm>

#include "bench/bench_common.h"
#include "hw/cost_model.h"
#include "util/table.h"

using namespace hercules;

namespace {

void
scheduleDetail(const hw::CostModel& cost, const model::Model& m,
               int workers)
{
    std::printf("-- DLRM-RMC1 schedule with %d op worker(s) --\n",
                workers);
    hw::CpuExecContext cx;
    cx.workers = workers;
    cx.mem_bw_gbps = 5.0;
    hw::GraphTiming t = cost.cpuGraphTiming(m.graph, 256, cx);
    TablePrinter tab({"Op", "Kind", "Worker", "Start (us)", "End (us)"});
    auto ops = t.ops;
    std::sort(ops.begin(), ops.end(),
              [](const auto& a, const auto& b) {
                  return a.start_us < b.start_us;
              });
    for (const auto& rec : ops) {
        const model::Node& n = m.graph.node(rec.node);
        tab.addRow({n.name, model::opKindName(n.kind()),
                    std::to_string(rec.worker),
                    fmtDouble(rec.start_us, 0),
                    fmtDouble(rec.end_us, 0)});
    }
    tab.print();
    std::printf("makespan %.0f us, idle fraction %.1f%%\n\n",
                t.latency_us, t.idle_frac * 100.0);
}

}  // namespace

int
main()
{
    bench::banner("Figure 5",
                  "Op-worker schedules and idle cycles (batch 256)");

    const hw::ServerSpec& server = hw::serverSpec(hw::ServerType::T2);
    hw::CostModel cost(server);

    model::Model rmc1 = model::buildModel(model::ModelId::DlrmRmc1);
    scheduleDetail(cost, rmc1, 1);
    scheduleDetail(cost, rmc1, 2);

    std::printf("-- Idle fraction per model vs op-workers --\n");
    TablePrinter t({"Model", "1 worker", "2 workers", "3 workers",
                    "4 workers", "Sparse ops", "Dense chain"});
    for (model::ModelId id : model::allModels()) {
        model::Model m = model::buildModel(id);
        std::vector<std::string> row = {model::modelName(id)};
        hw::CpuExecContext cx;
        cx.mem_bw_gbps = 5.0;
        for (int w = 1; w <= 4; ++w) {
            cx.workers = w;
            hw::GraphTiming gt = cost.cpuGraphTiming(m.graph, 256, cx);
            row.push_back(fmtPercent(gt.idle_frac, 1));
        }
        auto sparse = m.graph.stageNodes(model::Stage::Sparse);
        auto dense = m.graph.stageNodes(model::Stage::Dense);
        row.push_back(std::to_string(sparse.size()));
        row.push_back(std::to_string(m.graph.criticalPathLength(dense)));
        t.addRow(row);
    }
    t.print();

    std::printf("\npaper: idle cycles range 25%%-74%% with 2-4 parallel "
                "op workers, growing\nnearly linearly — the DenseNet "
                "dependency chain cannot use extra workers.\n");
    return 0;
}
