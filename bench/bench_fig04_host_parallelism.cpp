/**
 * @file
 * Fig 4 — host-side task scheduling of DLRM-RMC1 on CPU-T2: the fixed
 * DeepRecSys allocation (20 threads x 1 core) vs 10 threads x 2 cores
 * across SLA targets. Reproduction targets: 10x2 wins up to ~1.35x
 * latency-bounded QPS and ~1.33x QPS/W, and average CPU utilization is
 * NOT correlated with performance (the 10x2 winner shows *lower* util).
 */
#include "bench/bench_common.h"
#include "sim/measure.h"
#include "util/table.h"

using namespace hercules;

namespace {

struct ConfigResult
{
    double qps = 0.0;
    double qps_per_watt = 0.0;
    double cpu_util = 0.0;
};

/** Best over the batch axis for a fixed (threads x cores) allocation —
 *  the whole axis fans onto the evaluation engine at once. */
ConfigResult
bestOverBatches(core::EvalEngine& engine, const hw::ServerSpec& server,
                const model::Model& m, int threads, int cores,
                double sla_ms)
{
    sched::SearchOptions opt = bench::benchSearchOptions();
    std::vector<core::EvalRequest> reqs;
    for (int b : opt.space.batches) {
        sched::SchedulingConfig cfg;
        cfg.mapping = sched::Mapping::CpuModelBased;
        cfg.cpu_threads = threads;
        cfg.cores_per_thread = cores;
        cfg.batch = b;
        reqs.push_back(
            bench::evalRequest(server, m, cfg, sla_ms, opt.measure));
    }
    ConfigResult best;
    for (const core::EvalResult& res : engine.evaluateMany(reqs)) {
        if (res.valid && res.point && res.point->qps > best.qps) {
            best.qps = res.point->qps;
            best.qps_per_watt = res.point->result.qps_per_watt;
            best.cpu_util = res.point->result.cpu_util;
        }
    }
    return best;
}

}  // namespace

int
main()
{
    bench::banner("Figure 4",
                  "Host-side parallelism: 20x1 (DeepRecSys) vs 10x2 on "
                  "DLRM-RMC1 / CPU-T2");

    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(hw::ServerType::T2);
    core::EvalEngine engine;

    TablePrinter t({"SLA (ms)", "QPS 20x1", "QPS 10x2", "gain",
                    "QPS/W 20x1", "QPS/W 10x2", "gain",
                    "util 20x1", "util 10x2"});
    double max_qps_gain = 0.0;
    double max_eff_gain = 0.0;
    for (double sla : {4.0, 8.0, 16.0, 64.0, 256.0, 512.0}) {
        ConfigResult drs = bestOverBatches(engine, server, m, 20, 1, sla);
        ConfigResult ten2 =
            bestOverBatches(engine, server, m, 10, 2, sla);
        double qgain = drs.qps > 0 ? ten2.qps / drs.qps : 0.0;
        double egain = drs.qps_per_watt > 0
                           ? ten2.qps_per_watt / drs.qps_per_watt
                           : 0.0;
        max_qps_gain = std::max(max_qps_gain, qgain);
        max_eff_gain = std::max(max_eff_gain, egain);
        t.addRow({fmtDouble(sla, 0), fmtDouble(drs.qps, 0),
                  fmtDouble(ten2.qps, 0), fmtSpeedup(qgain),
                  fmtDouble(drs.qps_per_watt, 2),
                  fmtDouble(ten2.qps_per_watt, 2), fmtSpeedup(egain),
                  fmtPercent(drs.cpu_util), fmtPercent(ten2.cpu_util)});
    }
    t.print();

    std::printf("\nmax gains: %.2fx QPS (paper: up to 1.35x), "
                "%.2fx QPS/W (paper: up to 1.33x)\n",
                max_qps_gain, max_eff_gain);
    std::printf("note: the faster 10x2 config runs at LOWER average CPU "
                "utilization —\nutil is not a performance proxy "
                "(paper §III-A).\n");
    return 0;
}
