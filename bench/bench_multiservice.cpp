/**
 * @file
 * Multi-service co-serving on a shared heterogeneous fleet: 2–3
 * recommendation services with phase-shifted diurnal peaks replayed
 * end to end (every query flows through a simulated shard) across a
 * T2+T3+T7 fleet, comparing
 *
 *  - JOINT:     one shared fleet, the multi-model ProvisionProblem
 *               solved jointly every interval (cluster::serveTraces);
 *  - PARTITION: per-service static partitions — each service gets a
 *               dedicated slice of the fleet sized for its own peak
 *               (greedy best-QPS/W types first), always on, no
 *               cross-service sharing.
 *
 * The gate: joint provisioning must use no more average provisioned
 * power than the static partitions at an equal-or-lower SLA-violation
 * rate — the Hercules premise that sharing a heterogeneity-aware
 * fleet across phase-shifted services beats static silos.
 *
 * Results land in BENCH_multiservice.json (per-service aggregates and
 * per-interval trajectories, dropped arrivals included).
 *
 * Fast mode (HERCULES_BENCH_FAST=1): 2 services on T2+T3, 3h horizon.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster_manager.h"
#include "cluster/serving.h"
#include "core/profiler.h"
#include "sim/prepared.h"
#include "util/table.h"

using namespace hercules;

namespace {

using Clock = std::chrono::steady_clock;

core::EfficiencyTable
loadOrProfile(const std::vector<hw::ServerType>& fleet,
              const std::vector<model::ModelId>& models)
{
    std::string cache = bench::fastMode()
                            ? "hercules_efficiency_multiservice_fast.csv"
                            : "hercules_efficiency_multiservice.csv";
    if (auto cached = bench::tryLoadCachedTable(cache))
        return *cached;
    std::printf("profiling the shard fleet (%zu types x %zu models)"
                "...\n\n",
                fleet.size(), models.size());
    core::ProfilerOptions popt;
    popt.search = bench::benchSearchOptions();
    popt.servers = fleet;
    popt.models = models;
    core::EfficiencyTable t = core::offlineProfile(popt);
    t.writeCsv(cache);
    return t;
}

/** Aggregate view of one scenario (joint run or summed partitions). */
struct ScenarioResult
{
    double avg_provisioned_w = 0.0;
    double avg_consumed_w = 0.0;
    size_t completed = 0;
    size_t dropped = 0;
    size_t sla_violations = 0;
    double sla_violation_rate = 0.0;
    double p99_ms = 0.0;
    double wall_ms = 0.0;
    std::vector<sim::ServiceRunStats> services;
    std::vector<sim::IntervalStats> intervals;
};

void
printScenario(const char* name, const ScenarioResult& r,
              const std::vector<cluster::ServiceSpec>& services)
{
    std::printf("%s:\n", name);
    TablePrinter t({"Service", "Completed", "Dropped", "p50 (ms)",
                    "p99 (ms)", "SLA (ms)", "SLA viol"});
    for (size_t s = 0; s < r.services.size(); ++s) {
        const sim::ServiceRunStats& svc = r.services[s];
        t.addRow({model::modelName(services[s].model),
                  std::to_string(svc.completed),
                  std::to_string(svc.dropped),
                  fmtDouble(svc.p50_ms, 2), fmtDouble(svc.p99_ms, 2),
                  fmtDouble(svc.sla_ms, 0),
                  fmtPercent(svc.sla_violation_rate, 2)});
    }
    t.print();
    std::printf("  avg power %.3f kW provisioned / %.3f kW consumed, "
                "violation rate %.2f%%, p99 %.2f ms, wall %.0f ms\n\n",
                r.avg_provisioned_w / 1e3, r.avg_consumed_w / 1e3,
                r.sla_violation_rate * 100.0, r.p99_ms, r.wall_ms);
}

}  // namespace

int
main()
{
    bench::banner("Multi-service co-serving",
                  "Phase-shifted services on one shared heterogeneous "
                  "fleet: joint provisioning vs static partitions");

    const bool fast = bench::fastMode();
    const std::vector<hw::ServerType> fleet =
        fast ? std::vector<hw::ServerType>{hw::ServerType::T2,
                                           hw::ServerType::T3}
             : std::vector<hw::ServerType>{hw::ServerType::T2,
                                           hw::ServerType::T3,
                                           hw::ServerType::T7};
    const std::vector<int> slots = fast ? std::vector<int>{2, 1}
                                        : std::vector<int>{2, 2, 1};
    std::vector<model::ModelId> model_ids =
        fast ? std::vector<model::ModelId>{model::ModelId::DlrmRmc1,
                                           model::ModelId::DlrmRmc2}
             : std::vector<model::ModelId>{model::ModelId::DlrmRmc1,
                                           model::ModelId::DlrmRmc2,
                                           model::ModelId::DlrmRmc3};

    core::EfficiencyTable table = loadOrProfile(fleet, model_ids);

    // Per-service full-fleet capacity (every slot serving only it).
    const size_t S = model_ids.size();
    std::vector<double> capacity(S, 0.0);
    for (size_t s = 0; s < S; ++s) {
        for (size_t h = 0; h < fleet.size(); ++h) {
            const core::EfficiencyEntry* e =
                table.get(fleet[h], model_ids[s]);
            if (e != nullptr && e->feasible)
                capacity[s] += slots[h] * e->qps;
        }
        std::printf("%s: %.0f QPS full-fleet capacity, SLA %.0f ms\n",
                    model::modelName(model_ids[s]), capacity[s],
                    model::buildModel(model_ids[s]).sla_ms);
        if (capacity[s] <= 0.0) {
            std::printf("service infeasible on this fleet — abort\n");
            return 1;
        }
    }

    // Phase-shifted diurnal peaks: the whole point of co-serving is
    // that one service's peak rides the others' troughs. Peaks are
    // sized so the *sum* of instantaneous loads stays within what the
    // shared fleet can serve.
    cluster::TraceServeOptions opt;
    opt.horizon_hours = fast ? 3.0 : 24.0;
    opt.interval_hours = 0.5;
    opt.trace.time_compression = fast ? 960.0 : 480.0;
    opt.trace.seed = 42;

    // Peaks sized so static per-service partitions remain *feasible*
    // on the 5-slot fleet (the baseline must not be a starved
    // strawman): joint provisioning then wins on power by riding the
    // phase offsets, not because a silo collapses.
    std::vector<cluster::ServiceSpec> services(S);
    for (size_t s = 0; s < S; ++s) {
        // RMC2's full-fleet capacity is an order of magnitude below
        // the others'; at an equal fraction its single-shard
        // utilization runs hot and the tail comparison drowns in its
        // queueing noise. Keep the small service lighter.
        double peak_frac = fast ? 0.40 : 0.18;
        if (!fast && model_ids[s] == model::ModelId::DlrmRmc2) {
            peak_frac = 0.12;
            // The small filtering-style service also ranks fewer
            // candidates per query (per-service size spreads, Fig
            // 2(b)): without this its rare giant queries exceed the
            // 50 ms SLA on a weak shard by execution time alone, and
            // no provisioning headroom can fix execution time.
            services[s].sizes.sigma = 0.7;
            services[s].sizes.max_size = 300;
        }
        services[s].model = model_ids[s];
        services[s].load.peak_qps = peak_frac * capacity[s];
        services[s].load.trough_frac = 0.35;
        // Offset peaks evenly across the horizon (fast mode keeps all
        // peaks inside its short window).
        services[s].load.peak_hour =
            fast ? 0.75 + 1.5 * static_cast<double>(s)
                 : 20.0 - 8.0 * static_cast<double>(s);
        services[s].load.seed = 5 + s;
    }

    std::printf("\nhorizon %.0fh, interval %.1fh, compression %.0fx, "
                "%zu services, peaks at",
                opt.horizon_hours, opt.interval_hours,
                opt.trace.time_compression, S);
    for (size_t s = 0; s < S; ++s)
        std::printf(" %.1fh", services[s].load.peak_hour);
    std::printf("\n\n");

    cluster::HerculesProvisioner provisioner;

    // Over-provision rate R: the curves' max inter-interval ramp plus
    // tail headroom — the efficiency-tuple QPS is *latency-bounded*,
    // so provisioning coverage at exactly load*(1+ramp) would run
    // shards at the edge of their SLA. Both scenarios use the same R.
    const double kTailHeadroom = 0.15;
    double r_est = 0.0;
    for (size_t s = 0; s < S; ++s)
        r_est = std::max(
            r_est, cluster::estimateOverprovisionRate(
                       workload::DiurnalLoad(services[s].load),
                       opt.interval_hours, opt.horizon_hours));
    if (!fast) {
        // The fast smoke's 3h window never leaves the peak region; the
        // extra headroom only reshuffles its LP assignment. Keep the
        // internal ramp estimate there.
        opt.overprovision_rate = r_est + kTailHeadroom;
        std::printf("over-provision rate R = %.1f%% (%.1f%% ramp + "
                    "%.0f%% tail headroom)\n\n",
                    opt.overprovision_rate * 100.0, r_est * 100.0,
                    kTailHeadroom * 100.0);
    }

    // ---- scenario 1: shared fleet, joint provisioning -----------------
    Clock::time_point t0 = Clock::now();
    cluster::MultiServeResult joint = cluster::serveTraces(
        table, fleet, slots, services, provisioner, opt);
    ScenarioResult jr;
    jr.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    jr.avg_provisioned_w = joint.sim.avg_provisioned_power_w;
    jr.avg_consumed_w = joint.sim.avg_consumed_power_w;
    jr.completed = joint.sim.completed;
    jr.dropped = joint.sim.dropped;
    jr.sla_violations = joint.sim.sla_violations;
    jr.sla_violation_rate = joint.sim.sla_violation_rate;
    jr.p99_ms = joint.sim.p99_ms;
    jr.services = joint.sim.services;
    jr.intervals = joint.sim.intervals;
    printScenario("JOINT (shared fleet)", jr, services);

    // ---- scenario 2: static per-service partitions --------------------
    // Each service gets a dedicated, always-on slice sized for its own
    // peak * (1 + R): greedily the best remaining QPS/W types. The
    // merged trace is replayed per partition (each service sees exactly
    // the arrivals it saw in the joint run).
    workload::TraceOptions topt = opt.trace;
    topt.horizon_hours = opt.horizon_hours;
    std::vector<workload::ServiceTraceSpec> trace_specs(S);
    for (size_t s = 0; s < S; ++s) {
        trace_specs[s].load = services[s].load;
        trace_specs[s].sizes = services[s].sizes;
        trace_specs[s].pooling = services[s].pooling;
    }
    std::vector<workload::Query> merged =
        workload::generateMultiServiceTrace(trace_specs, topt);
    const double interval_s =
        opt.interval_hours * 3600.0 / topt.time_compression;
    const double horizon_s =
        opt.horizon_hours * 3600.0 / topt.time_compression;

    t0 = Clock::now();
    std::vector<int> remaining = slots;
    std::vector<model::Model> models;
    models.reserve(S);
    for (size_t s = 0; s < S; ++s)
        models.push_back(model::buildModel(model_ids[s]));

    ScenarioResult pr;
    pr.services.resize(S);
    double static_prov_w = 0.0;
    size_t static_denom = 0;
    OnlineStats static_p99;
    // Partition sizing, two passes so a scarce fleet still gives every
    // silo at least one server: (1) each service claims one server of
    // its best QPS/W type; (2) greedy top-up, best types first, until
    // the service's peak * (1 + R) is covered or slots run out.
    std::vector<std::vector<size_t>> type_order(S);
    std::vector<std::vector<int>> takes(S,
                                        std::vector<int>(fleet.size(), 0));
    for (size_t s = 0; s < S; ++s) {
        for (size_t h = 0; h < fleet.size(); ++h) {
            const core::EfficiencyEntry* e =
                table.get(fleet[h], model_ids[s]);
            if (e != nullptr && e->feasible)
                type_order[s].push_back(h);
        }
        std::stable_sort(type_order[s].begin(), type_order[s].end(),
                         [&](size_t a, size_t b) {
                             const auto* ea =
                                 table.get(fleet[a], model_ids[s]);
                             const auto* eb =
                                 table.get(fleet[b], model_ids[s]);
                             return ea->qps / std::max(ea->power_w, 1e-9) >
                                    eb->qps / std::max(eb->power_w, 1e-9);
                         });
        for (size_t h : type_order[s]) {
            if (remaining[h] > 0) {
                ++takes[s][h];
                --remaining[h];
                break;
            }
        }
    }
    for (size_t s = 0; s < S; ++s) {
        double part_r = opt.overprovision_rate >= 0.0
                            ? opt.overprovision_rate
                            : joint.service_r[s];
        double target =
            services[s].load.peak_qps * (1.0 + part_r);
        std::vector<int>& take = takes[s];
        double covered = 0.0, part_power = 0.0;
        for (size_t h = 0; h < fleet.size(); ++h) {
            const auto* e = table.get(fleet[h], model_ids[s]);
            if (take[h] > 0) {
                covered += take[h] * e->qps;
                part_power += take[h] * e->power_w;
            }
        }
        for (size_t h : type_order[s]) {
            const auto* e = table.get(fleet[h], model_ids[s]);
            while (covered < target && remaining[h] > 0) {
                ++take[h];
                --remaining[h];
                covered += e->qps;
                part_power += e->power_w;
            }
        }

        sim::ClusterSim::Options copt;
        copt.router = opt.router;
        copt.router_seed = opt.router_seed;
        copt.sla_ms = opt.sla_ms;
        copt.service_sla_ms.assign(s + 1, 0.0);
        copt.service_sla_ms[s] = models[s].sla_ms;
        sim::ClusterSim part(copt);
        part.declareServices(static_cast<int>(s) + 1);
        std::vector<sim::PreparedWorkload> prepared;
        prepared.reserve(fleet.size());
        for (size_t h = 0; h < fleet.size(); ++h) {
            if (take[h] <= 0)
                continue;
            const auto* e = table.get(fleet[h], model_ids[s]);
            prepared.push_back(sim::prepare(hw::serverSpec(fleet[h]),
                                            models[s], e->config));
            for (int i = 0; i < take[h]; ++i)
                part.addShard(prepared.back(), e->qps,
                              static_cast<int>(s));
        }

        std::vector<workload::Query> sub;
        for (const workload::Query& q : merged)
            if (q.service_id == static_cast<int>(s))
                sub.push_back(q);

        // Static partition: every shard always on, constant power.
        std::vector<int> all_ids(part.numShards());
        for (size_t i = 0; i < all_ids.size(); ++i)
            all_ids[i] = static_cast<int>(i);
        auto static_plan = [&](int, double) {
            sim::IntervalPlan pl;
            pl.active = all_ids;
            pl.provisioned_power_w = part_power;
            return pl;
        };
        sim::ClusterSimResult rr =
            part.run(sub, interval_s, static_plan, horizon_s);

        // Fold this partition's trajectory into the combined one (the
        // partitions share the interval grid; drain tails may differ).
        if (pr.intervals.size() < rr.intervals.size())
            pr.intervals.resize(rr.intervals.size());
        for (size_t k = 0; k < rr.intervals.size(); ++k) {
            sim::IntervalStats& acc = pr.intervals[k];
            const sim::IntervalStats& iv = rr.intervals[k];
            acc.t0_s = iv.t0_s;
            acc.t1_s = std::max(acc.t1_s, iv.t1_s);
            acc.arrivals += iv.arrivals;
            acc.completions += iv.completions;
            acc.dropped += iv.dropped;
            acc.sla_violations += iv.sla_violations;
            acc.p99_ms = std::max(acc.p99_ms, iv.p99_ms);
            acc.provisioned_power_w += iv.provisioned_power_w;
            acc.consumed_power_w += iv.consumed_power_w;
            size_t d = acc.completions + acc.dropped;
            acc.sla_violation_rate =
                d > 0 ? static_cast<double>(acc.sla_violations) /
                            static_cast<double>(d)
                      : 0.0;
        }

        pr.services[s] = rr.services[static_cast<size_t>(s)];
        pr.completed += rr.completed;
        pr.dropped += rr.dropped;
        pr.sla_violations += rr.sla_violations;
        static_denom += rr.completed + rr.dropped;
        static_prov_w += rr.avg_provisioned_power_w;
        pr.avg_consumed_w += rr.avg_consumed_power_w;
        static_p99.add(rr.p99_ms);
        std::printf("  partition %s:", model::modelName(model_ids[s]));
        for (size_t h = 0; h < fleet.size(); ++h)
            if (take[h] > 0)
                std::printf(" %s x%d", hw::serverTypeName(fleet[h]),
                            take[h]);
        std::printf("  (%.0f QPS for %.0f target, %.0f W)\n", covered,
                    target, part_power);
    }
    std::printf("\n");
    pr.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    pr.avg_provisioned_w = static_prov_w;
    pr.sla_violation_rate =
        static_denom > 0
            ? static_cast<double>(pr.sla_violations) /
                  static_cast<double>(static_denom)
            : 0.0;
    pr.p99_ms = static_p99.max();
    printScenario("PARTITION (static per-service silos)", pr, services);

    // ---- the co-serving gate ------------------------------------------
    bool power_ok =
        jr.avg_provisioned_w <= pr.avg_provisioned_w + 1e-6;
    bool sla_ok =
        jr.sla_violation_rate <= pr.sla_violation_rate + 1e-12;
    bool ok = power_ok && sla_ok;
    std::printf("joint vs static partitions: %s (power %.3f vs %.3f "
                "kW, violations %.3f%% vs %.3f%%)\n",
                ok ? "DOMINATES" : "FAIL",
                jr.avg_provisioned_w / 1e3, pr.avg_provisioned_w / 1e3,
                jr.sla_violation_rate * 100.0,
                pr.sla_violation_rate * 100.0);

    // ---- JSON trajectory ----------------------------------------------
    FILE* f = std::fopen("BENCH_multiservice.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        bench::writeJsonProvenance(f);
        std::fprintf(f, "  \"horizon_hours\": %.2f,\n",
                     opt.horizon_hours);
        std::fprintf(f, "  \"interval_hours\": %.2f,\n",
                     opt.interval_hours);
        std::fprintf(f, "  \"time_compression\": %.0f,\n",
                     opt.trace.time_compression);
        std::fprintf(f, "  \"num_services\": %zu,\n", S);
        std::fprintf(f, "  \"joint_dominates_partitions\": %s,\n",
                     ok ? "true" : "false");
        std::fprintf(f, "  \"services\": [\n");
        for (size_t s = 0; s < S; ++s) {
            std::fprintf(
                f,
                "    {\"model\": \"%s\", \"peak_qps\": %.1f, "
                "\"peak_hour\": %.2f, \"sla_ms\": %.2f, "
                "\"capacity_qps\": %.1f, \"estimated_r\": %.4f}%s\n",
                model::modelName(model_ids[s]),
                services[s].load.peak_qps, services[s].load.peak_hour,
                joint.service_sla_ms[s], capacity[s],
                joint.service_r[s], s + 1 < S ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        auto scenario = [&](const char* name, const ScenarioResult& r,
                            bool last) {
            std::fprintf(f, "  \"%s\": {\n", name);
            std::fprintf(f, "      \"avg_provisioned_power_w\": %.2f,\n",
                         r.avg_provisioned_w);
            std::fprintf(f, "      \"avg_consumed_power_w\": %.2f,\n",
                         r.avg_consumed_w);
            std::fprintf(f, "      \"completed\": %zu,\n", r.completed);
            std::fprintf(f, "      \"dropped\": %zu,\n", r.dropped);
            std::fprintf(f, "      \"sla_violations\": %zu,\n",
                         r.sla_violations);
            std::fprintf(f, "      \"sla_violation_rate\": %.6f,\n",
                         r.sla_violation_rate);
            std::fprintf(f, "      \"p99_ms\": %.4f,\n", r.p99_ms);
            std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
            std::fprintf(f, "      \"per_service\": [\n");
            for (size_t s = 0; s < r.services.size(); ++s) {
                const sim::ServiceRunStats& svc = r.services[s];
                std::fprintf(
                    f,
                    "        {\"model\": \"%s\", \"completed\": %zu, "
                    "\"dropped\": %zu, \"p50_ms\": %.4f, "
                    "\"p99_ms\": %.4f, \"sla_violation_rate\": "
                    "%.6f}%s\n",
                    model::modelName(model_ids[s]), svc.completed,
                    svc.dropped, svc.p50_ms, svc.p99_ms,
                    svc.sla_violation_rate,
                    s + 1 < r.services.size() ? "," : "");
            }
            std::fprintf(f, "      ],\n");
            bench::writeIntervalArrays(f, r.intervals);
            std::fprintf(f, "  }%s\n", last ? "" : ",");
        };
        scenario("joint", jr, false);
        scenario("partition", pr, true);
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_multiservice.json\n");
    }

    return ok ? 0 : 1;
}
