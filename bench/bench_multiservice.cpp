/**
 * @file
 * Multi-service co-serving on a shared heterogeneous fleet: 2–3
 * recommendation services with phase-shifted diurnal peaks replayed
 * end to end (every query flows through a simulated shard) across a
 * T2+T3+T7 fleet, comparing
 *
 *  - JOINT:     one shared fleet, the multi-model ProvisionProblem
 *               solved jointly every interval — declared by
 *               scenarios/three_service_phase_shift.scn and executed
 *               through scenario::run();
 *  - PARTITION: per-service static partitions — each service gets a
 *               dedicated slice of the fleet sized for its own peak
 *               (greedy best-QPS/W types first), always on, no
 *               cross-service sharing.
 *
 * The gate: joint provisioning must use no more average provisioned
 * power than the static partitions at an equal-or-lower SLA-violation
 * rate — the Hercules premise that sharing a heterogeneity-aware
 * fleet across phase-shifted services beats static silos.
 *
 * Results land in BENCH_multiservice.json (per-service aggregates and
 * per-interval trajectories, dropped arrivals included).
 *
 * Fast mode (HERCULES_BENCH_FAST=1): 2 services on T2+T3, 3h horizon.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster_manager.h"
#include "scenario/scenario.h"
#include "sim/prepared.h"
#include "util/table.h"

using namespace hercules;

namespace {

using Clock = std::chrono::steady_clock;

/** Aggregate view of one scenario (joint run or summed partitions). */
struct ScenarioView
{
    double avg_provisioned_w = 0.0;
    double avg_consumed_w = 0.0;
    size_t completed = 0;
    size_t dropped = 0;
    size_t sla_violations = 0;
    double sla_violation_rate = 0.0;
    double p99_ms = 0.0;
    double wall_ms = 0.0;
    std::vector<sim::ServiceRunStats> services;
    std::vector<sim::IntervalStats> intervals;
};

void
printScenario(const char* name, const ScenarioView& r,
              const std::vector<model::ModelId>& models)
{
    std::printf("%s:\n", name);
    TablePrinter t({"Service", "Completed", "Dropped", "p50 (ms)",
                    "p99 (ms)", "SLA (ms)", "SLA viol"});
    for (size_t s = 0; s < r.services.size(); ++s) {
        const sim::ServiceRunStats& svc = r.services[s];
        t.addRow({model::modelName(models[s]),
                  std::to_string(svc.completed),
                  std::to_string(svc.dropped),
                  fmtDouble(svc.p50_ms, 2), fmtDouble(svc.p99_ms, 2),
                  fmtDouble(svc.sla_ms, 0),
                  fmtPercent(svc.sla_violation_rate, 2)});
    }
    t.print();
    std::printf("  avg power %.3f kW provisioned / %.3f kW consumed, "
                "violation rate %.2f%%, p99 %.2f ms, wall %.0f ms\n\n",
                r.avg_provisioned_w / 1e3, r.avg_consumed_w / 1e3,
                r.sla_violation_rate * 100.0, r.p99_ms, r.wall_ms);
}

}  // namespace

int
main()
{
    bench::banner("Multi-service co-serving",
                  "Phase-shifted services on one shared heterogeneous "
                  "fleet: joint provisioning vs static partitions");

    const bool fast = bench::fastMode();
    scenario::ScenarioSpec spec =
        bench::loadScenario("three_service_phase_shift.scn");
    if (fast) {
        // Smoke deltas: 2 services on a 3-slot T2+T3 fleet, peaks
        // inside a 3h window, cheap profiling into the fast cache.
        spec.fleet = {{hw::ServerType::T2, 2},
                      {hw::ServerType::T3, 1}};
        spec.services.resize(2);
        for (size_t s = 0; s < spec.services.size(); ++s) {
            scenario::ServiceScenario svc;
            svc.spec.model = s == 0 ? model::ModelId::DlrmRmc1
                                    : model::ModelId::DlrmRmc2;
            svc.peak_qps_frac = 0.40;
            svc.spec.load.trough_frac = 0.35;
            svc.spec.load.peak_hour =
                0.75 + 1.5 * static_cast<double>(s);
            svc.spec.load.seed = 5 + s;
            spec.services[s] = svc;
        }
        spec.serve.horizon_hours = 3.0;
        spec.serve.trace.time_compression = 960.0;
        spec.profile.table_cache =
            "hercules_efficiency_multiservice_fast.csv";
        spec.profile.num_queries = 250;
        spec.profile.warmup_queries = 50;
        spec.profile.bisect_iters = 4;
    }

    core::EfficiencyTable table = scenario::profileTable(spec);
    scenario::resolvePeaks(spec, table);

    const size_t S = spec.services.size();
    std::vector<model::ModelId> model_ids;
    for (const scenario::ServiceScenario& s : spec.services)
        model_ids.push_back(s.spec.model);

    // Per-service full-fleet capacity (every slot serving only it).
    std::vector<double> capacity(S, 0.0);
    for (size_t s = 0; s < S; ++s) {
        for (const scenario::FleetEntry& e : spec.fleet) {
            const core::EfficiencyEntry* ent =
                table.get(e.type, model_ids[s]);
            if (ent != nullptr && ent->feasible)
                capacity[s] += e.shard_slots * ent->qps;
        }
        std::printf("%s: %.0f QPS full-fleet capacity, SLA %.0f ms\n",
                    model::modelName(model_ids[s]), capacity[s],
                    model::buildModel(model_ids[s]).sla_ms);
        if (capacity[s] <= 0.0) {
            std::printf("service infeasible on this fleet — abort\n");
            return 1;
        }
    }

    std::printf("\nhorizon %.0fh, interval %.1fh, compression %.0fx, "
                "%zu services, peaks at",
                spec.serve.horizon_hours, spec.serve.interval_hours,
                spec.serve.trace.time_compression, S);
    for (size_t s = 0; s < S; ++s)
        std::printf(" %.1fh", spec.services[s].spec.load.peak_hour);
    std::printf("\n\n");

    // Over-provision rate R: the curves' max inter-interval ramp plus
    // tail headroom — the efficiency-tuple QPS is *latency-bounded*,
    // so provisioning coverage at exactly load*(1+ramp) would run
    // shards at the edge of their SLA. Both scenarios use the same R.
    const double kTailHeadroom = 0.15;
    double r_est = 0.0;
    for (size_t s = 0; s < S; ++s)
        r_est = std::max(
            r_est,
            cluster::estimateOverprovisionRate(
                workload::DiurnalLoad(spec.services[s].spec.load),
                spec.serve.interval_hours, spec.serve.horizon_hours));
    if (!fast) {
        // The fast smoke's 3h window never leaves the peak region; the
        // extra headroom only reshuffles its LP assignment. Keep the
        // internal ramp estimate there.
        spec.serve.overprovision_rate = r_est + kTailHeadroom;
        std::printf("over-provision rate R = %.1f%% (%.1f%% ramp + "
                    "%.0f%% tail headroom)\n\n",
                    spec.serve.overprovision_rate * 100.0,
                    r_est * 100.0, kTailHeadroom * 100.0);
    }

    // ---- scenario 1: shared fleet, joint provisioning -----------------
    scenario::ScenarioResult joint_run = scenario::run(spec, &table);
    const cluster::MultiServeResult& joint = joint_run.serve;
    ScenarioView jr;
    jr.wall_ms = joint_run.serve_wall_ms;
    jr.avg_provisioned_w = joint.sim.avg_provisioned_power_w;
    jr.avg_consumed_w = joint.sim.avg_consumed_power_w;
    jr.completed = joint.sim.completed;
    jr.dropped = joint.sim.dropped;
    jr.sla_violations = joint.sim.sla_violations;
    jr.sla_violation_rate = joint.sim.sla_violation_rate;
    jr.p99_ms = joint.sim.p99_ms;
    jr.services = joint.sim.services;
    jr.intervals = joint.sim.intervals;
    printScenario("JOINT (shared fleet)", jr, model_ids);

    // ---- scenario 2: static per-service partitions --------------------
    // Each service gets a dedicated, always-on slice sized for its own
    // peak * (1 + R): greedily the best remaining QPS/W types. The
    // merged trace is replayed per partition (each service sees exactly
    // the arrivals it saw in the joint run).
    std::vector<hw::ServerType> fleet;
    std::vector<int> slots;
    for (const scenario::FleetEntry& e : spec.fleet) {
        fleet.push_back(e.type);
        slots.push_back(e.shard_slots);
    }
    const cluster::TraceServeOptions& opt = spec.serve;
    workload::TraceOptions topt = opt.trace;
    topt.horizon_hours = opt.horizon_hours;
    std::vector<workload::ServiceTraceSpec> trace_specs(S);
    for (size_t s = 0; s < S; ++s) {
        trace_specs[s].load = spec.services[s].spec.load;
        trace_specs[s].sizes = spec.services[s].spec.sizes;
        trace_specs[s].pooling = spec.services[s].spec.pooling;
    }
    std::vector<workload::Query> merged =
        workload::generateMultiServiceTrace(trace_specs, topt);
    const double interval_s =
        opt.interval_hours * 3600.0 / topt.time_compression;
    const double horizon_s =
        opt.horizon_hours * 3600.0 / topt.time_compression;

    Clock::time_point t0 = Clock::now();
    std::vector<int> remaining = slots;
    std::vector<model::Model> models;
    models.reserve(S);
    for (size_t s = 0; s < S; ++s)
        models.push_back(model::buildModel(model_ids[s]));

    ScenarioView pr;
    pr.services.resize(S);
    double static_prov_w = 0.0;
    size_t static_denom = 0;
    OnlineStats static_p99;
    // Partition sizing, two passes so a scarce fleet still gives every
    // silo at least one server: (1) each service claims one server of
    // its best QPS/W type; (2) greedy top-up, best types first, until
    // the service's peak * (1 + R) is covered or slots run out.
    std::vector<std::vector<size_t>> type_order(S);
    std::vector<std::vector<int>> takes(S,
                                        std::vector<int>(fleet.size(), 0));
    for (size_t s = 0; s < S; ++s) {
        for (size_t h = 0; h < fleet.size(); ++h) {
            const core::EfficiencyEntry* e =
                table.get(fleet[h], model_ids[s]);
            if (e != nullptr && e->feasible)
                type_order[s].push_back(h);
        }
        std::stable_sort(type_order[s].begin(), type_order[s].end(),
                         [&](size_t a, size_t b) {
                             const auto* ea =
                                 table.get(fleet[a], model_ids[s]);
                             const auto* eb =
                                 table.get(fleet[b], model_ids[s]);
                             return ea->qps / std::max(ea->power_w, 1e-9) >
                                    eb->qps / std::max(eb->power_w, 1e-9);
                         });
        for (size_t h : type_order[s]) {
            if (remaining[h] > 0) {
                ++takes[s][h];
                --remaining[h];
                break;
            }
        }
    }
    for (size_t s = 0; s < S; ++s) {
        double part_r = opt.overprovision_rate >= 0.0
                            ? opt.overprovision_rate
                            : joint.service_r[s];
        double target =
            spec.services[s].spec.load.peak_qps * (1.0 + part_r);
        std::vector<int>& take = takes[s];
        double covered = 0.0, part_power = 0.0;
        for (size_t h = 0; h < fleet.size(); ++h) {
            const auto* e = table.get(fleet[h], model_ids[s]);
            if (take[h] > 0) {
                covered += take[h] * e->qps;
                part_power += take[h] * e->power_w;
            }
        }
        for (size_t h : type_order[s]) {
            const auto* e = table.get(fleet[h], model_ids[s]);
            while (covered < target && remaining[h] > 0) {
                ++take[h];
                --remaining[h];
                covered += e->qps;
                part_power += e->power_w;
            }
        }

        sim::ClusterSim::Options copt;
        copt.router = opt.router;
        copt.router_seed = opt.router_seed;
        copt.sla_ms = opt.sla_ms;
        copt.service_sla_ms.assign(s + 1, 0.0);
        copt.service_sla_ms[s] = models[s].sla_ms;
        sim::ClusterSim part(copt);
        part.declareServices(static_cast<int>(s) + 1);
        std::vector<sim::PreparedWorkload> prepared;
        prepared.reserve(fleet.size());
        for (size_t h = 0; h < fleet.size(); ++h) {
            if (take[h] <= 0)
                continue;
            const auto* e = table.get(fleet[h], model_ids[s]);
            prepared.push_back(sim::prepare(hw::serverSpec(fleet[h]),
                                            models[s], e->config));
            for (int i = 0; i < take[h]; ++i)
                part.addShard(prepared.back(), e->qps,
                              static_cast<int>(s));
        }

        std::vector<workload::Query> sub;
        for (const workload::Query& q : merged)
            if (q.service_id == static_cast<int>(s))
                sub.push_back(q);

        // Static partition: every shard always on, constant power.
        std::vector<int> all_ids(part.numShards());
        for (size_t i = 0; i < all_ids.size(); ++i)
            all_ids[i] = static_cast<int>(i);
        auto static_plan = [&](int, double) {
            sim::IntervalPlan pl;
            pl.active = all_ids;
            pl.provisioned_power_w = part_power;
            return pl;
        };
        sim::ClusterSimResult rr =
            part.run(sub, interval_s, static_plan, horizon_s);

        // Fold this partition's trajectory into the combined one (the
        // partitions share the interval grid; drain tails may differ).
        if (pr.intervals.size() < rr.intervals.size())
            pr.intervals.resize(rr.intervals.size());
        for (size_t k = 0; k < rr.intervals.size(); ++k) {
            sim::IntervalStats& acc = pr.intervals[k];
            const sim::IntervalStats& iv = rr.intervals[k];
            acc.t0_s = iv.t0_s;
            acc.t1_s = std::max(acc.t1_s, iv.t1_s);
            acc.arrivals += iv.arrivals;
            acc.completions += iv.completions;
            acc.dropped += iv.dropped;
            acc.sla_violations += iv.sla_violations;
            acc.p99_ms = std::max(acc.p99_ms, iv.p99_ms);
            acc.provisioned_power_w += iv.provisioned_power_w;
            acc.consumed_power_w += iv.consumed_power_w;
            size_t d = acc.completions + acc.dropped;
            acc.sla_violation_rate =
                d > 0 ? static_cast<double>(acc.sla_violations) /
                            static_cast<double>(d)
                      : 0.0;
        }

        pr.services[s] = rr.services[static_cast<size_t>(s)];
        pr.completed += rr.completed;
        pr.dropped += rr.dropped;
        pr.sla_violations += rr.sla_violations;
        static_denom += rr.completed + rr.dropped;
        static_prov_w += rr.avg_provisioned_power_w;
        pr.avg_consumed_w += rr.avg_consumed_power_w;
        static_p99.add(rr.p99_ms);
        std::printf("  partition %s:", model::modelName(model_ids[s]));
        for (size_t h = 0; h < fleet.size(); ++h)
            if (take[h] > 0)
                std::printf(" %s x%d", hw::serverTypeName(fleet[h]),
                            take[h]);
        std::printf("  (%.0f QPS for %.0f target, %.0f W)\n", covered,
                    target, part_power);
    }
    std::printf("\n");
    pr.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    pr.avg_provisioned_w = static_prov_w;
    pr.sla_violation_rate =
        static_denom > 0
            ? static_cast<double>(pr.sla_violations) /
                  static_cast<double>(static_denom)
            : 0.0;
    pr.p99_ms = static_p99.max();
    printScenario("PARTITION (static per-service silos)", pr, model_ids);

    // ---- the co-serving gate ------------------------------------------
    bool power_ok =
        jr.avg_provisioned_w <= pr.avg_provisioned_w + 1e-6;
    bool sla_ok =
        jr.sla_violation_rate <= pr.sla_violation_rate + 1e-12;
    bool ok = power_ok && sla_ok;
    std::printf("joint vs static partitions: %s (power %.3f vs %.3f "
                "kW, violations %.3f%% vs %.3f%%)\n",
                ok ? "DOMINATES" : "FAIL",
                jr.avg_provisioned_w / 1e3, pr.avg_provisioned_w / 1e3,
                jr.sla_violation_rate * 100.0,
                pr.sla_violation_rate * 100.0);

    // ---- JSON trajectory ----------------------------------------------
    FILE* f = std::fopen("BENCH_multiservice.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        bench::writeJsonProvenance(f);
        std::fprintf(f, "  \"scenario\": \"%s\",\n",
                     spec.name.c_str());
        std::fprintf(f, "  \"horizon_hours\": %.2f,\n",
                     opt.horizon_hours);
        std::fprintf(f, "  \"interval_hours\": %.2f,\n",
                     opt.interval_hours);
        std::fprintf(f, "  \"time_compression\": %.0f,\n",
                     opt.trace.time_compression);
        std::fprintf(f, "  \"num_services\": %zu,\n", S);
        std::fprintf(f, "  \"joint_dominates_partitions\": %s,\n",
                     ok ? "true" : "false");
        std::fprintf(f, "  \"services\": [\n");
        for (size_t s = 0; s < S; ++s) {
            std::fprintf(
                f,
                "    {\"model\": \"%s\", \"peak_qps\": %.1f, "
                "\"peak_hour\": %.2f, \"sla_ms\": %.2f, "
                "\"capacity_qps\": %.1f, \"estimated_r\": %.4f}%s\n",
                model::modelName(model_ids[s]),
                spec.services[s].spec.load.peak_qps,
                spec.services[s].spec.load.peak_hour,
                joint.service_sla_ms[s], capacity[s],
                joint.service_r[s], s + 1 < S ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        auto scenario_json = [&](const char* name,
                                 const ScenarioView& r, bool last) {
            std::fprintf(f, "  \"%s\": {\n", name);
            std::fprintf(f, "      \"avg_provisioned_power_w\": %.2f,\n",
                         r.avg_provisioned_w);
            std::fprintf(f, "      \"avg_consumed_power_w\": %.2f,\n",
                         r.avg_consumed_w);
            std::fprintf(f, "      \"completed\": %zu,\n", r.completed);
            std::fprintf(f, "      \"dropped\": %zu,\n", r.dropped);
            std::fprintf(f, "      \"sla_violations\": %zu,\n",
                         r.sla_violations);
            std::fprintf(f, "      \"sla_violation_rate\": %.6f,\n",
                         r.sla_violation_rate);
            std::fprintf(f, "      \"p99_ms\": %.4f,\n", r.p99_ms);
            std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
            std::fprintf(f, "      \"per_service\": [\n");
            for (size_t s = 0; s < r.services.size(); ++s) {
                const sim::ServiceRunStats& svc = r.services[s];
                std::fprintf(
                    f,
                    "        {\"model\": \"%s\", \"completed\": %zu, "
                    "\"dropped\": %zu, \"p50_ms\": %.4f, "
                    "\"p99_ms\": %.4f, \"sla_violation_rate\": "
                    "%.6f}%s\n",
                    model::modelName(model_ids[s]), svc.completed,
                    svc.dropped, svc.p50_ms, svc.p99_ms,
                    svc.sla_violation_rate,
                    s + 1 < r.services.size() ? "," : "");
            }
            std::fprintf(f, "      ],\n");
            bench::writeIntervalArrays(f, r.intervals);
            std::fprintf(f, "  }%s\n", last ? "" : ",");
        };
        scenario_json("joint", jr, false);
        scenario_json("partition", pr, true);
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_multiservice.json\n");
    }

    return ok ? 0 : 1;
}
