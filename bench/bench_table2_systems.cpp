/**
 * @file
 * Table II — system parameters and the T1–T10 heterogeneous server
 * catalog with availabilities.
 */
#include "bench/bench_common.h"
#include "hw/power.h"
#include "util/table.h"

using namespace hercules;

int
main()
{
    bench::banner("Table II", "System parameters and configurations");

    TablePrinter t({"Th", "Nh", "CPU", "Cores", "GHz", "Memory", "GB",
                    "BW GB/s", "Ranks", "GPU", "TFLOPs", "Idle W",
                    "Peak W"});
    for (const auto& s : hw::serverCatalog()) {
        hw::PowerModel pm(s);
        t.addRow({
            hw::serverTypeName(s.type),
            std::to_string(s.availability),
            s.cpu.name,
            std::to_string(s.cpu.cores),
            fmtDouble(s.cpu.freq_ghz, 1),
            s.mem.name,
            std::to_string(s.mem.capacity_gb),
            fmtDouble(s.mem.peakBwGbps(), 1),
            std::to_string(s.mem.totalRanks()),
            s.gpu ? s.gpu->name : "-",
            s.gpu ? fmtDouble(s.gpu->peakTflops(), 1) : "-",
            fmtDouble(pm.idlePowerW(), 0),
            fmtDouble(pm.peakPowerW(), 0),
        });
    }
    t.print();
    return 0;
}
