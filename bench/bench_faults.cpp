/**
 * @file
 * Fault recovery: the shard_crash_recovery scenario (both T3 servers
 * and the T7 crash at hour 8.25 — mid-interval, at the high-priority
 * service's peak — killing their in-flight queries; the T7 is
 * repaired at hour 9, the T3s at 10.25) replayed three ways:
 *
 *  - HEALTHY:  the same spec with the faults stripped — the reference
 *    trajectory the recovered system is measured against;
 *  - SELFHEAL: the shipped spec — deadline admission, priority
 *    shedding, latency-feedback routing, and the self-healing serving
 *    loop (each interval the provisioner sees only surviving capacity
 *    and activates replacement T3/T7 slots under the power budget);
 *  - STATIC:   the same faults ridden out the traditional way — a
 *    static tuple-weighted router and a fleet over-provisioned by an
 *    extra 50 points of R at all times, no feedback.
 *
 * The gate: after the crash, SELFHEAL's high-priority service must
 * return to the HEALTHY arm's per-interval violation rate (plus a
 * small tolerance) within kRecoveryIntervals re-provisioning
 * intervals, at a lower average provisioned power than STATIC. Killed
 * in-flight queries count as SLA violations in every arm, so the
 * crash itself is never free — the win must come from how fast the
 * serving loop rebuilds capacity, not from accounting.
 *
 * All three arms replay bitwise-identical merged traces (same specs
 * and seeds; faults only change shard health). Results land in
 * BENCH_faults.json.
 *
 * Fast mode (HERCULES_BENCH_FAST=1): 12h horizon, 960x compression,
 * reduced profiling probes.
 */
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster_manager.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace hercules;

namespace {

/** Intervals the self-healing loop gets to win back the SLA. */
constexpr int kRecoveryIntervals = 4;
/** Violation-rate slack over the healthy arm that counts as healed. */
constexpr double kRecoveryTol = 0.02;
/** Extra over-provision rate the STATIC arm burns at all times. */
constexpr double kStaticExtraR = 0.5;

/** One arm's aggregate view. */
struct ArmResult
{
    std::string name;
    double avg_provisioned_w = 0.0;
    double avg_consumed_w = 0.0;
    size_t completed = 0;
    size_t dropped = 0;
    size_t rejected = 0;
    size_t failed_inflight = 0;
    size_t sla_violations = 0;
    double sla_violation_rate = 0.0;
    double p99_ms = 0.0;
    double wall_ms = 0.0;
    size_t health_transitions = 0;
    std::vector<sim::ServiceRunStats> services;
    std::vector<sim::IntervalStats> intervals;
};

ArmResult
runArm(const std::string& name, const scenario::ScenarioSpec& spec,
       const core::EfficiencyTable& table)
{
    scenario::ScenarioResult r = scenario::run(spec, &table);
    ArmResult out;
    out.name = name;
    out.wall_ms = r.serve_wall_ms;
    out.avg_provisioned_w = r.serve.sim.avg_provisioned_power_w;
    out.avg_consumed_w = r.serve.sim.avg_consumed_power_w;
    out.completed = r.serve.sim.completed;
    out.dropped = r.serve.sim.dropped;
    out.rejected = r.serve.sim.rejected;
    out.failed_inflight = r.serve.sim.failed_inflight;
    out.sla_violations = r.serve.sim.sla_violations;
    out.sla_violation_rate = r.serve.sim.sla_violation_rate;
    out.p99_ms = r.serve.sim.p99_ms;
    out.health_transitions = r.serve.sim.health_transitions.size();
    out.services = r.serve.sim.services;
    out.intervals = r.serve.sim.intervals;
    return out;
}

void
printArm(const ArmResult& r, const std::vector<model::ModelId>& models)
{
    std::printf("%s:\n", r.name.c_str());
    TablePrinter t({"Service", "Completed", "Rejected", "Dropped",
                    "Killed", "p99 (ms)", "Viol rate"});
    for (size_t s = 0; s < r.services.size(); ++s) {
        const sim::ServiceRunStats& svc = r.services[s];
        t.addRow({model::modelName(models[s]),
                  std::to_string(svc.completed),
                  std::to_string(svc.rejected),
                  std::to_string(svc.dropped),
                  std::to_string(svc.failed_inflight),
                  fmtDouble(svc.p99_ms, 2),
                  fmtPercent(svc.sla_violation_rate, 2)});
    }
    t.print();
    std::printf("  avg power %.3f kW provisioned / %.3f kW consumed, "
                "violation rate %.2f%%, %zu killed in-flight, %zu "
                "health transitions, wall %.0f ms\n\n",
                r.avg_provisioned_w / 1e3, r.avg_consumed_w / 1e3,
                r.sla_violation_rate * 100.0, r.failed_inflight,
                r.health_transitions, r.wall_ms);
}

void
writeArmJson(FILE* f, const ArmResult& r,
             const std::vector<model::ModelId>& models, bool last)
{
    std::fprintf(f, "  \"%s\": {\n", r.name.c_str());
    std::fprintf(f, "      \"avg_provisioned_power_w\": %.2f,\n",
                 r.avg_provisioned_w);
    std::fprintf(f, "      \"avg_consumed_power_w\": %.2f,\n",
                 r.avg_consumed_w);
    std::fprintf(f, "      \"completed\": %zu,\n", r.completed);
    std::fprintf(f, "      \"rejected\": %zu,\n", r.rejected);
    std::fprintf(f, "      \"dropped\": %zu,\n", r.dropped);
    std::fprintf(f, "      \"failed_inflight\": %zu,\n",
                 r.failed_inflight);
    std::fprintf(f, "      \"sla_violations\": %zu,\n",
                 r.sla_violations);
    std::fprintf(f, "      \"sla_violation_rate\": %.6f,\n",
                 r.sla_violation_rate);
    std::fprintf(f, "      \"p99_ms\": %.4f,\n", r.p99_ms);
    std::fprintf(f, "      \"health_transitions\": %zu,\n",
                 r.health_transitions);
    std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
    std::fprintf(f, "      \"per_service\": [\n");
    for (size_t s = 0; s < r.services.size(); ++s) {
        const sim::ServiceRunStats& svc = r.services[s];
        std::fprintf(
            f,
            "        {\"model\": \"%s\", \"completed\": %zu, "
            "\"rejected\": %zu, \"dropped\": %zu, "
            "\"failed_inflight\": %zu, \"p99_ms\": %.4f, "
            "\"sla_violations\": %zu, "
            "\"sla_violation_rate\": %.6f}%s\n",
            model::modelName(models[s]), svc.completed, svc.rejected,
            svc.dropped, svc.failed_inflight, svc.p99_ms,
            svc.sla_violations, svc.sla_violation_rate,
            s + 1 < r.services.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    bench::writeIntervalArrays(f, r.intervals);
    std::fprintf(f, "  }%s\n", last ? "" : ",");
}

/**
 * Intervals (from the crash interval on) until the arm's service is
 * back at the healthy arm's per-interval violation rate + tolerance.
 * @return -1 when it never recovers inside the horizon.
 */
int
recoveryIntervals(const ArmResult& arm, const ArmResult& healthy,
                  size_t svc, size_t crash_iv)
{
    for (size_t i = crash_iv; i < arm.intervals.size(); ++i) {
        double ref =
            healthy.intervals[i].services[svc].sla_violation_rate;
        if (arm.intervals[i].services[svc].sla_violation_rate <=
            ref + kRecoveryTol)
            return static_cast<int>(i - crash_iv);
    }
    return -1;
}

/** Fast-mode deltas, identical per arm: shorter day, fewer probes. */
void
applyFastDeltas(scenario::ScenarioSpec& spec)
{
    spec.serve.horizon_hours = 12.0;
    spec.serve.trace.time_compression = 960.0;
    spec.profile.table_cache =
        "hercules_efficiency_multiservice_fast.csv";
    spec.profile.num_queries = 250;
    spec.profile.warmup_queries = 50;
    spec.profile.bisect_iters = 4;
}

}  // namespace

int
main()
{
    bench::banner("Fault recovery",
                  "Shard crashes vs the self-healing serving loop vs "
                  "static over-provisioning");

    scenario::ScenarioSpec selfheal_spec =
        bench::loadScenario("shard_crash_recovery.scn");
    if (bench::fastMode())
        applyFastDeltas(selfheal_spec);

    scenario::ScenarioSpec healthy_spec = selfheal_spec;
    healthy_spec.serve.faults = fault::FaultSpec{};

    scenario::ScenarioSpec static_spec = selfheal_spec;
    static_spec.serve.router = sim::RouterPolicy::HerculesWeighted;

    core::EfficiencyTable table =
        scenario::profileTable(selfheal_spec);
    for (scenario::ScenarioSpec* spec :
         {&selfheal_spec, &healthy_spec, &static_spec})
        scenario::resolvePeaks(*spec, table);

    const size_t S = selfheal_spec.services.size();
    std::vector<model::ModelId> model_ids;
    for (const scenario::ServiceScenario& s : selfheal_spec.services)
        model_ids.push_back(s.spec.model);
    for (size_t s = 0; s < S; ++s) {
        if (selfheal_spec.services[s].spec.load.peak_qps <= 0.0) {
            std::printf("%s infeasible on this fleet — abort\n",
                        model::modelName(model_ids[s]));
            return 1;
        }
    }

    // Shared over-provision rate (forecast ramp + tail headroom, as
    // in bench_qos); the STATIC arm burns an extra kStaticExtraR on
    // top at every interval — crash or no crash.
    const double kTailHeadroom = 0.15;
    double r_est = 0.0;
    for (size_t s = 0; s < S; ++s)
        r_est = std::max(
            r_est, cluster::estimateOverprovisionRate(
                       workload::DiurnalLoad(
                           selfheal_spec.services[s].spec.load),
                       selfheal_spec.serve.interval_hours,
                       selfheal_spec.serve.horizon_hours));
    const double r_shared = r_est + kTailHeadroom;
    selfheal_spec.serve.overprovision_rate = r_shared;
    healthy_spec.serve.overprovision_rate = r_shared;
    static_spec.serve.overprovision_rate = r_shared + kStaticExtraR;

    // The crash instant drives the recovery clock.
    double crash_hour = -1.0, repair_hour = -1.0;
    for (const fault::FaultEvent& e :
         selfheal_spec.serve.faults.events) {
        if (e.state == fault::HealthState::Failed &&
            (crash_hour < 0.0 || e.t_hours < crash_hour))
            crash_hour = e.t_hours;
        if (e.state == fault::HealthState::Healthy &&
            (repair_hour < 0.0 || e.t_hours < repair_hour))
            repair_hour = e.t_hours;
    }
    const size_t crash_iv = static_cast<size_t>(
        crash_hour / selfheal_spec.serve.interval_hours);

    std::printf("horizon %.0fh, crash at %.1fh (repair %.1fh), R "
                "%.1f%% (static arm %.1f%%), recovery budget %d "
                "intervals\n\n",
                selfheal_spec.serve.horizon_hours, crash_hour,
                repair_hour, r_shared * 100.0,
                (r_shared + kStaticExtraR) * 100.0,
                kRecoveryIntervals);

    ArmResult healthy = runArm("healthy", healthy_spec, table);
    printArm(healthy, model_ids);
    ArmResult selfheal = runArm("selfheal", selfheal_spec, table);
    printArm(selfheal, model_ids);
    ArmResult static_op = runArm("static", static_spec, table);
    printArm(static_op, model_ids);

    // The high-priority service's trajectory through the outage.
    {
        TablePrinter t({"Hour", "Healthy viol", "Selfheal viol",
                        "Static viol", "Selfheal kW", "Static kW"});
        const double iv_h = selfheal_spec.serve.interval_hours;
        size_t lo = crash_iv >= 2 ? crash_iv - 2 : 0;
        size_t hi = std::min(selfheal.intervals.size(),
                             crash_iv + 2 * static_cast<size_t>(
                                            kRecoveryIntervals) +
                                 2);
        for (size_t i = lo; i < hi; ++i) {
            t.addRow(
                {fmtDouble(static_cast<double>(i) * iv_h, 1),
                 fmtPercent(healthy.intervals[i]
                                .services[0]
                                .sla_violation_rate,
                            1),
                 fmtPercent(selfheal.intervals[i]
                                .services[0]
                                .sla_violation_rate,
                            1),
                 fmtPercent(static_op.intervals[i]
                                .services[0]
                                .sla_violation_rate,
                            1),
                 fmtDouble(
                     selfheal.intervals[i].provisioned_power_w / 1e3,
                     3),
                 fmtDouble(
                     static_op.intervals[i].provisioned_power_w / 1e3,
                     3)});
        }
        t.print();
        std::printf("\n");
    }

    // ---- the recovery gate --------------------------------------------
    const int rec_selfheal =
        recoveryIntervals(selfheal, healthy, 0, crash_iv);
    const int rec_static =
        recoveryIntervals(static_op, healthy, 0, crash_iv);
    bool recovery_ok =
        rec_selfheal >= 0 && rec_selfheal <= kRecoveryIntervals;
    bool power_ok = selfheal.avg_provisioned_w <=
                    static_op.avg_provisioned_w + 1e-6;
    bool ok = recovery_ok && power_ok;

    std::printf("self-healing recovery, high-priority %s: %s "
                "(recovered in %d intervals, budget %d; static arm "
                "%d)\n",
                model::modelName(model_ids[0]),
                recovery_ok ? "PASS" : "FAIL", rec_selfheal,
                kRecoveryIntervals, rec_static);
    std::printf("steady-state power, selfheal vs static: %s (%.3f vs "
                "%.3f kW provisioned)\n",
                power_ok ? "PASS" : "FAIL",
                selfheal.avg_provisioned_w / 1e3,
                static_op.avg_provisioned_w / 1e3);

    // ---- JSON trajectory ----------------------------------------------
    FILE* f = std::fopen("BENCH_faults.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        bench::writeJsonProvenance(f);
        std::fprintf(f, "  \"scenario\": \"%s\",\n",
                     selfheal_spec.name.c_str());
        std::fprintf(f, "  \"horizon_hours\": %.2f,\n",
                     selfheal_spec.serve.horizon_hours);
        std::fprintf(f, "  \"interval_hours\": %.2f,\n",
                     selfheal_spec.serve.interval_hours);
        std::fprintf(f, "  \"time_compression\": %.0f,\n",
                     selfheal_spec.serve.trace.time_compression);
        std::fprintf(f, "  \"crash_hour\": %.2f,\n", crash_hour);
        std::fprintf(f, "  \"repair_hour\": %.2f,\n", repair_hour);
        std::fprintf(f, "  \"overprovision_rate\": %.4f,\n", r_shared);
        std::fprintf(f, "  \"static_overprovision_rate\": %.4f,\n",
                     r_shared + kStaticExtraR);
        std::fprintf(f, "  \"recovery_budget_intervals\": %d,\n",
                     kRecoveryIntervals);
        std::fprintf(f, "  \"recovery_intervals_selfheal\": %d,\n",
                     rec_selfheal);
        std::fprintf(f, "  \"recovery_intervals_static\": %d,\n",
                     rec_static);
        std::fprintf(f, "  \"recovery_ok\": %s,\n",
                     recovery_ok ? "true" : "false");
        std::fprintf(f, "  \"power_ok\": %s,\n",
                     power_ok ? "true" : "false");
        std::fprintf(f, "  \"selfheal_beats_static\": %s,\n",
                     ok ? "true" : "false");
        writeArmJson(f, healthy, model_ids, false);
        writeArmJson(f, selfheal, model_ids, false);
        writeArmJson(f, static_op, model_ids, true);
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_faults.json\n");
    }

    return ok ? 0 : 1;
}
