/**
 * @file
 * Sharded online serving: router policies × cluster provisioners over
 * a 24h diurnal replay on a heterogeneous (T2+T3+T7) shard fleet.
 *
 * The experiment is declared, not wired: the base spec is
 * scenarios/single_service.scn and this bench only applies deltas —
 * the full-mode fleet/horizon, then one (provisioner, router) override
 * per combo — before handing everything to scenario::run(). Every
 * query flows through a steppable ServerInstance shard behind the
 * chosen Router; the chosen Provisioner re-provisions the active shard
 * set every interval. Reported per combination: end-to-end p50/p99,
 * SLA-violation rate, provisioned vs consumed power, and re-provision
 * count. The heterogeneity-aware (efficiency-tuple-weighted) router
 * must dominate round-robin on this fleet — that gate is the bench's
 * exit status.
 *
 * Results land in BENCH_cluster.json next to the binary (per-interval
 * p99 / violation-rate / power arrays included for the trajectory).
 *
 * Fast mode (HERCULES_BENCH_FAST=1): the base spec unchanged — 2
 * shards (T2+T3), short horizon.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace hercules;

namespace {

struct ComboResult
{
    const char* provisioner;
    const char* router;
    double wall_ms = 0.0;
    scenario::ScenarioResult r;
};

/**
 * The Provisioner::name() display strings the pre-scenario bench
 * emitted — kept so the "provisioner" values in BENCH_cluster.json
 * stay comparable across the PR trajectory.
 */
const char*
provisionerDisplayName(scenario::ProvisionerKind k)
{
    switch (k) {
      case scenario::ProvisionerKind::Hercules: return "Hercules";
      case scenario::ProvisionerKind::Greedy: return "Greedy";
      case scenario::ProvisionerKind::PriorityAware:
        return "Priority-aware";
      case scenario::ProvisionerKind::Nh: return "NH";
    }
    return "?";
}

}  // namespace

int
main()
{
    bench::banner("Cluster serving",
                  "Router policies x provisioners over a diurnal replay "
                  "on a sharded heterogeneous fleet");

    const bool fast = bench::fastMode();
    scenario::ScenarioSpec spec =
        bench::loadScenario("single_service.scn");
    if (!fast) {
        // Full-experiment deltas on the smoke base: the three-type
        // fleet, the whole day, production compression and the
        // standard bench profiling knobs.
        spec.fleet = {{hw::ServerType::T2, 2},
                      {hw::ServerType::T3, 2},
                      {hw::ServerType::T7, 1}};
        spec.services[0].peak_qps_frac = 0.60;
        spec.services[0].spec.load.peak_hour = 20.0;
        spec.serve.horizon_hours = 24.0;
        spec.serve.trace.time_compression = 480.0;
        spec.profile.table_cache = "hercules_efficiency_serving.csv";
        spec.profile.num_queries = 400;
        spec.profile.warmup_queries = 80;
        spec.profile.bisect_iters = 5;
    }

    core::EfficiencyTable table = scenario::profileTable(spec);
    const model::ModelId model = spec.services[0].spec.model;
    double fleet_qps = 0.0;
    for (const scenario::FleetEntry& e : spec.fleet) {
        const core::EfficiencyEntry* ent = table.get(e.type, model);
        if (ent != nullptr && ent->feasible) {
            fleet_qps += e.shard_slots * ent->qps;
            std::printf("%s x%d: %.0f QPS / %.0f W  (%s)\n",
                        hw::serverTypeName(e.type), e.shard_slots,
                        ent->qps, ent->power_w,
                        ent->config.str().c_str());
        }
    }
    std::printf("shard fleet capacity: %.0f QPS\n\n", fleet_qps);

    scenario::resolvePeaks(spec, table);
    const double sla_ms = model::buildModel(model).sla_ms;
    std::printf("horizon %.0fh, interval %.1fh, peak %.0f QPS, SLA "
                "%.0f ms, compression %.0fx\n\n",
                spec.serve.horizon_hours, spec.serve.interval_hours,
                spec.services[0].spec.load.peak_qps, sla_ms,
                spec.serve.trace.time_compression);

    const std::vector<scenario::ProvisionerKind> provisioners = {
        scenario::ProvisionerKind::Hercules,
        scenario::ProvisionerKind::Greedy,
        scenario::ProvisionerKind::Nh};
    spec.nh_seed = 11;

    using Clock = std::chrono::steady_clock;
    std::vector<ComboResult> results;
    for (scenario::ProvisionerKind prov : provisioners) {
        for (sim::RouterPolicy rp : sim::allRouterPolicies()) {
            spec.provisioner = prov;
            spec.serve.router = rp;
            Clock::time_point t0 = Clock::now();
            ComboResult c;
            c.provisioner = provisionerDisplayName(prov);
            c.router = sim::routerPolicyName(rp);
            c.r = scenario::run(spec, &table);
            c.wall_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count();
            results.push_back(std::move(c));
        }
    }

    TablePrinter t({"Provisioner", "Router", "p50 (ms)", "p99 (ms)",
                    "SLA viol", "Prov kW", "Cons kW", "Reprov",
                    "Wall (ms)"});
    for (const ComboResult& c : results) {
        const sim::ClusterSimResult& s = c.r.serve.sim;
        t.addRow({c.provisioner, c.router, fmtDouble(s.p50_ms, 2),
                  fmtDouble(s.p99_ms, 2),
                  fmtPercent(s.sla_violation_rate, 2),
                  fmtDouble(s.avg_provisioned_power_w / 1e3, 3),
                  fmtDouble(s.avg_consumed_power_w / 1e3, 3),
                  std::to_string(c.r.serve.reprovisions),
                  fmtDouble(c.wall_ms, 0)});
    }
    t.print();

    // ---- the heterogeneity gate ---------------------------------------
    // Under the Hercules provisioner, the tuple-weighted router must
    // dominate round-robin on both tail latency and violation rate.
    const ComboResult* rr = nullptr;
    const ComboResult* hw_aware = nullptr;
    for (const ComboResult& c : results) {
        if (std::string(c.provisioner) != "Hercules")
            continue;
        if (std::string(c.router) == "rr")
            rr = &c;
        if (std::string(c.router) == "hercules")
            hw_aware = &c;
    }
    bool ok =
        rr != nullptr && hw_aware != nullptr &&
        hw_aware->r.serve.sim.p99_ms <= rr->r.serve.sim.p99_ms + 1e-9 &&
        hw_aware->r.serve.sim.sla_violation_rate <=
            rr->r.serve.sim.sla_violation_rate + 1e-12;
    std::printf("\nheterogeneity-aware router vs round-robin: %s (p99 "
                "%.2f vs %.2f ms, violations %.2f%% vs %.2f%%)\n",
                ok ? "DOMINATES" : "FAIL",
                hw_aware ? hw_aware->r.serve.sim.p99_ms : -1.0,
                rr ? rr->r.serve.sim.p99_ms : -1.0,
                hw_aware
                    ? hw_aware->r.serve.sim.sla_violation_rate * 100
                    : -1.0,
                rr ? rr->r.serve.sim.sla_violation_rate * 100 : -1.0);

    // ---- JSON trajectory ----------------------------------------------
    FILE* f = std::fopen("BENCH_cluster.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        bench::writeJsonProvenance(f);
        std::fprintf(f, "  \"scenario\": \"%s\",\n",
                     spec.name.c_str());
        std::fprintf(f, "  \"horizon_hours\": %.2f,\n",
                     spec.serve.horizon_hours);
        std::fprintf(f, "  \"interval_hours\": %.2f,\n",
                     spec.serve.interval_hours);
        std::fprintf(f, "  \"time_compression\": %.0f,\n",
                     spec.serve.trace.time_compression);
        std::fprintf(f, "  \"sla_ms\": %.2f,\n", sla_ms);
        std::fprintf(f, "  \"peak_qps\": %.1f,\n",
                     spec.services[0].spec.load.peak_qps);
        std::fprintf(f, "  \"fleet_capacity_qps\": %.1f,\n",
                     fleet_qps);
        std::fprintf(f, "  \"hercules_router_dominates_rr\": %s,\n",
                     ok ? "true" : "false");
        std::fprintf(f, "  \"combos\": [\n");
        for (size_t i = 0; i < results.size(); ++i) {
            const ComboResult& c = results[i];
            const sim::ClusterSimResult& s = c.r.serve.sim;
            std::fprintf(f, "    {\n");
            std::fprintf(f, "      \"provisioner\": \"%s\",\n",
                         c.provisioner);
            std::fprintf(f, "      \"router\": \"%s\",\n", c.router);
            std::fprintf(f, "      \"wall_ms\": %.1f,\n", c.wall_ms);
            std::fprintf(f, "      \"queries\": %zu,\n",
                         c.r.serve.trace_queries);
            std::fprintf(f, "      \"completed\": %zu,\n", s.completed);
            std::fprintf(f, "      \"dropped\": %zu,\n", s.dropped);
            std::fprintf(f, "      \"p50_ms\": %.4f,\n", s.p50_ms);
            std::fprintf(f, "      \"p99_ms\": %.4f,\n", s.p99_ms);
            std::fprintf(f, "      \"sla_violation_rate\": %.6f,\n",
                         s.sla_violation_rate);
            std::fprintf(f, "      \"avg_provisioned_power_w\": %.2f,\n",
                         s.avg_provisioned_power_w);
            std::fprintf(f, "      \"avg_consumed_power_w\": %.2f,\n",
                         s.avg_consumed_power_w);
            std::fprintf(f, "      \"reprovisions\": %d,\n",
                         c.r.serve.reprovisions);
            bench::writeIntervalArrays(f, s.intervals);
            std::fprintf(f, "    }%s\n",
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_cluster.json\n");
    }

    return ok ? 0 : 1;
}
