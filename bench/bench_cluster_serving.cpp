/**
 * @file
 * Sharded online serving: router policies × cluster provisioners over
 * a 24h diurnal replay on a heterogeneous (T2+T3+T7) shard fleet.
 *
 * Every query flows through a steppable ServerInstance shard behind
 * the chosen Router; the chosen Provisioner re-provisions the active
 * shard set every interval (released shards drain before going dark).
 * Reported per combination: end-to-end p50/p99, SLA-violation rate,
 * provisioned vs consumed power, and re-provision count. The
 * heterogeneity-aware (efficiency-tuple-weighted) router must dominate
 * round-robin on this fleet — that gate is the bench's exit status.
 *
 * Results land in BENCH_cluster.json next to the binary (per-interval
 * p99 / violation-rate / power arrays included for the trajectory).
 *
 * Fast mode (HERCULES_BENCH_FAST=1): 2 shards (T2+T3), short horizon.
 */
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/serving.h"
#include "core/profiler.h"
#include "util/table.h"

using namespace hercules;

namespace {

using Clock = std::chrono::steady_clock;

struct ComboResult
{
    const char* provisioner;
    const char* router;
    double wall_ms = 0.0;
    cluster::TraceServeResult r;
};

core::EfficiencyTable
loadOrProfile(const std::vector<hw::ServerType>& fleet,
              model::ModelId model)
{
    std::string cache = bench::fastMode()
                            ? "hercules_efficiency_serving_fast.csv"
                            : "hercules_efficiency_serving.csv";
    if (auto cached = bench::tryLoadCachedTable(cache))
        return *cached;
    std::printf("profiling the shard fleet...\n\n");
    core::ProfilerOptions popt;
    popt.search = bench::benchSearchOptions();
    popt.servers = fleet;
    popt.models = {model};
    core::EfficiencyTable t = core::offlineProfile(popt);
    t.writeCsv(cache);
    return t;
}

}  // namespace

int
main()
{
    bench::banner("Cluster serving",
                  "Router policies x provisioners over a diurnal replay "
                  "on a sharded heterogeneous fleet");

    const bool fast = bench::fastMode();
    const model::ModelId model = model::ModelId::DlrmRmc1;
    const std::vector<hw::ServerType> fleet =
        fast ? std::vector<hw::ServerType>{hw::ServerType::T2,
                                           hw::ServerType::T3}
             : std::vector<hw::ServerType>{hw::ServerType::T2,
                                           hw::ServerType::T3,
                                           hw::ServerType::T7};
    const std::vector<int> slots = fast ? std::vector<int>{1, 1}
                                        : std::vector<int>{2, 2, 1};

    core::EfficiencyTable table = loadOrProfile(fleet, model);
    double fleet_qps = 0.0;
    for (size_t h = 0; h < fleet.size(); ++h) {
        const core::EfficiencyEntry* e = table.get(fleet[h], model);
        if (e != nullptr && e->feasible) {
            fleet_qps += slots[h] * e->qps;
            std::printf("%s x%d: %.0f QPS / %.0f W  (%s)\n",
                        hw::serverTypeName(fleet[h]), slots[h], e->qps,
                        e->power_w, e->config.str().c_str());
        }
    }
    std::printf("shard fleet capacity: %.0f QPS\n\n", fleet_qps);

    cluster::TraceServeOptions opt;
    opt.horizon_hours = fast ? 3.0 : 24.0;
    opt.interval_hours = 0.5;
    opt.sla_ms = model::buildModel(model).sla_ms;
    // Time compression: one simulated second stands for this many
    // wall-clock seconds (instantaneous QPS — and so all queueing
    // dynamics — is unchanged; only the query count shrinks).
    opt.trace.time_compression = fast ? 960.0 : 480.0;
    opt.trace.seed = 42;

    workload::DiurnalConfig load;
    // Sized so the peak needs most of the fleet: the provisioners must
    // activate heterogeneous shard mixes and the routers are exposed
    // to shards of very different capacity. The fast smoke puts the
    // diurnal peak inside its short horizon for the same reason.
    load.peak_qps = (fast ? 0.80 : 0.60) * fleet_qps;
    load.trough_frac = 0.35;
    if (fast)
        load.peak_hour = 1.5;
    load.seed = 5;

    cluster::HerculesProvisioner hercules;
    cluster::GreedyProvisioner greedy;
    cluster::NhProvisioner nh(11);
    std::vector<cluster::Provisioner*> provisioners = {&hercules,
                                                       &greedy, &nh};

    std::printf("horizon %.0fh, interval %.1fh, peak %.0f QPS, SLA "
                "%.0f ms, compression %.0fx\n\n",
                opt.horizon_hours, opt.interval_hours, load.peak_qps,
                opt.sla_ms, opt.trace.time_compression);

    std::vector<ComboResult> results;
    for (cluster::Provisioner* prov : provisioners) {
        for (sim::RouterPolicy rp : sim::allRouterPolicies()) {
            opt.router = rp;
            Clock::time_point t0 = Clock::now();
            ComboResult c;
            c.provisioner = prov->name();
            c.router = sim::routerPolicyName(rp);
            c.r = cluster::serveTrace(table, fleet, slots, model, load,
                                      *prov, opt);
            c.wall_ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - t0)
                            .count();
            results.push_back(std::move(c));
        }
    }

    TablePrinter t({"Provisioner", "Router", "p50 (ms)", "p99 (ms)",
                    "SLA viol", "Prov kW", "Cons kW", "Reprov",
                    "Wall (ms)"});
    for (const ComboResult& c : results) {
        t.addRow({c.provisioner, c.router, fmtDouble(c.r.sim.p50_ms, 2),
                  fmtDouble(c.r.sim.p99_ms, 2),
                  fmtPercent(c.r.sim.sla_violation_rate, 2),
                  fmtDouble(c.r.sim.avg_provisioned_power_w / 1e3, 3),
                  fmtDouble(c.r.sim.avg_consumed_power_w / 1e3, 3),
                  std::to_string(c.r.reprovisions),
                  fmtDouble(c.wall_ms, 0)});
    }
    t.print();

    // ---- the heterogeneity gate ---------------------------------------
    // Under the Hercules provisioner, the tuple-weighted router must
    // dominate round-robin on both tail latency and violation rate.
    const ComboResult* rr = nullptr;
    const ComboResult* hw_aware = nullptr;
    for (const ComboResult& c : results) {
        if (std::string(c.provisioner) != hercules.name())
            continue;
        if (std::string(c.router) == "rr")
            rr = &c;
        if (std::string(c.router) == "hercules")
            hw_aware = &c;
    }
    bool ok = rr != nullptr && hw_aware != nullptr &&
              hw_aware->r.sim.p99_ms <= rr->r.sim.p99_ms + 1e-9 &&
              hw_aware->r.sim.sla_violation_rate <=
                  rr->r.sim.sla_violation_rate + 1e-12;
    std::printf("\nheterogeneity-aware router vs round-robin: %s (p99 "
                "%.2f vs %.2f ms, violations %.2f%% vs %.2f%%)\n",
                ok ? "DOMINATES" : "FAIL",
                hw_aware ? hw_aware->r.sim.p99_ms : -1.0,
                rr ? rr->r.sim.p99_ms : -1.0,
                hw_aware ? hw_aware->r.sim.sla_violation_rate * 100 : -1.0,
                rr ? rr->r.sim.sla_violation_rate * 100 : -1.0);

    // ---- JSON trajectory ----------------------------------------------
    FILE* f = std::fopen("BENCH_cluster.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        bench::writeJsonProvenance(f);
        std::fprintf(f, "  \"horizon_hours\": %.2f,\n",
                     opt.horizon_hours);
        std::fprintf(f, "  \"interval_hours\": %.2f,\n",
                     opt.interval_hours);
        std::fprintf(f, "  \"time_compression\": %.0f,\n",
                     opt.trace.time_compression);
        std::fprintf(f, "  \"sla_ms\": %.2f,\n", opt.sla_ms);
        std::fprintf(f, "  \"peak_qps\": %.1f,\n", load.peak_qps);
        std::fprintf(f, "  \"fleet_capacity_qps\": %.1f,\n", fleet_qps);
        std::fprintf(f, "  \"hercules_router_dominates_rr\": %s,\n",
                     ok ? "true" : "false");
        std::fprintf(f, "  \"combos\": [\n");
        for (size_t i = 0; i < results.size(); ++i) {
            const ComboResult& c = results[i];
            const sim::ClusterSimResult& s = c.r.sim;
            std::fprintf(f, "    {\n");
            std::fprintf(f, "      \"provisioner\": \"%s\",\n",
                         c.provisioner);
            std::fprintf(f, "      \"router\": \"%s\",\n", c.router);
            std::fprintf(f, "      \"wall_ms\": %.1f,\n", c.wall_ms);
            std::fprintf(f, "      \"queries\": %zu,\n",
                         c.r.trace_queries);
            std::fprintf(f, "      \"completed\": %zu,\n", s.completed);
            std::fprintf(f, "      \"dropped\": %zu,\n", s.dropped);
            std::fprintf(f, "      \"p50_ms\": %.4f,\n", s.p50_ms);
            std::fprintf(f, "      \"p99_ms\": %.4f,\n", s.p99_ms);
            std::fprintf(f, "      \"sla_violation_rate\": %.6f,\n",
                         s.sla_violation_rate);
            std::fprintf(f, "      \"avg_provisioned_power_w\": %.2f,\n",
                         s.avg_provisioned_power_w);
            std::fprintf(f, "      \"avg_consumed_power_w\": %.2f,\n",
                         s.avg_consumed_power_w);
            std::fprintf(f, "      \"reprovisions\": %d,\n",
                         c.r.reprovisions);
            bench::writeIntervalArrays(f, s.intervals);
            std::fprintf(f, "    }%s\n",
                         i + 1 < results.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_cluster.json\n");
    }

    return ok ? 0 : 1;
}
