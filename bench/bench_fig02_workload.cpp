/**
 * @file
 * Fig 2(b)(c)(d) — workload characterization: heavy-tailed query sizes,
 * pooling-factor distribution across embedding tables, and the
 * synchronized diurnal load of two services across four datacenters.
 */
#include <cmath>

#include "bench/bench_common.h"
#include "model/model_zoo.h"
#include "util/stats.h"
#include "util/table.h"
#include "workload/diurnal.h"
#include "workload/querygen.h"

using namespace hercules;

namespace {

void
querySizeHistogram()
{
    std::printf("-- Fig 2(b): query size distribution --\n");
    workload::QueryGenerator gen(1000.0, 42);
    Histogram h(0.0, 1000.0, 20);
    PercentileTracker p;
    for (int i = 0; i < 50000; ++i) {
        int s = gen.next().size;
        h.add(s);
        p.add(s);
    }
    TablePrinter t({"Size bin", "Fraction", "Bar"});
    for (size_t b = 0; b < h.bins(); ++b) {
        int stars = static_cast<int>(h.fraction(b) * 120);
        t.addRow({fmtDouble(h.binLo(b), 0) + "-" +
                      fmtDouble(h.binHi(b), 0),
                  fmtPercent(h.fraction(b), 1),
                  std::string(static_cast<size_t>(stars), '#')});
    }
    t.print();
    std::printf("p50=%.0f  p75=%.0f  p95=%.0f  p99=%.0f "
                "(heavy tail within [10, 1000])\n\n",
                p.p50(), p.p75(), p.p95(), p.p99());
}

void
poolingFactors()
{
    std::printf("-- Fig 2(c): pooling factors across embedding tables "
                "(DLRM-RMC1, 500 queries) --\n");
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    workload::QueryGenerator gen(1000.0, 7);
    TablePrinter t({"EmbID", "Mean pooling", "p5", "p95"});
    int emb_id = 0;
    for (const auto& n : m.graph.nodes()) {
        if (n.kind() != model::OpKind::EmbeddingLookup)
            continue;
        const auto& p = std::get<model::EmbeddingParams>(n.params);
        PercentileTracker samples;
        workload::QueryGenerator qgen(1000.0,
                                      100 + static_cast<uint64_t>(emb_id));
        for (int q = 0; q < 500; ++q)
            samples.add(p.avgPooling() * qgen.next().pooling_scale);
        t.addRow({std::to_string(emb_id), fmtDouble(samples.mean(), 1),
                  fmtDouble(samples.percentile(5), 1),
                  fmtDouble(samples.percentile(95), 1)});
        ++emb_id;
    }
    t.print();
    std::printf("\n");
}

void
diurnalLoads()
{
    std::printf("-- Fig 2(d): diurnal load of two services across four "
                "datacenters (one week) --\n");
    TablePrinter t({"Hour", "S1/DC1", "S1/DC2", "S1/DC3", "S1/DC4",
                    "S2/DC1", "S2/DC2"});
    std::vector<workload::DiurnalLoad> curves;
    for (int svc = 0; svc < 2; ++svc) {
        for (int dc = 0; dc < 4; ++dc) {
            workload::DiurnalConfig cfg;
            cfg.peak_qps = svc == 0 ? 50'000 : 35'000;
            cfg.peak_hour = 20.0 + 0.3 * dc;
            cfg.seed = static_cast<uint64_t>(svc * 10 + dc);
            curves.emplace_back(cfg);
        }
    }
    for (int hour = 0; hour < 24 * 7; hour += 6) {
        t.addRow({std::to_string(hour),
                  fmtEng(curves[0].loadAt(hour), 1),
                  fmtEng(curves[1].loadAt(hour), 1),
                  fmtEng(curves[2].loadAt(hour), 1),
                  fmtEng(curves[3].loadAt(hour), 1),
                  fmtEng(curves[4].loadAt(hour), 1),
                  fmtEng(curves[5].loadAt(hour), 1)});
    }
    t.print();

    double lo = 1e18, hi = 0.0;
    for (double h = 0.0; h < 24.0; h += 0.1) {
        double total = 0.0;
        for (const auto& c : curves)
            total += c.loadAt(h);
        lo = std::min(lo, total);
        hi = std::max(hi, total);
    }
    std::printf("\naggregated peak-to-trough fluctuation: %.1f%% "
                "(paper: >50%%)\n",
                (hi - lo) / hi * 100.0);
}

}  // namespace

int
main()
{
    bench::banner("Figure 2", "Workload characterization");
    querySizeHistogram();
    poolingFactors();
    diurnalLoads();
    return 0;
}
