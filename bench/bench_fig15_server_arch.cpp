/**
 * @file
 * Fig 15 — server-architecture exploration: normalized latency-bounded
 * throughput and energy efficiency of all six production models across
 * the ten server types (SLA targets 20/50/50/50/100/100 ms).
 *
 * Reproduction targets: NMP servers dominate the pooled DLRMs (RMC1 /
 * RMC2) in both metrics and scale with rank parallelism; GPU servers
 * dominate the compute-heavy models (RMC3 / MT-WnD / DIN / DIEN); NMP
 * brings no throughput gain — and an efficiency *loss* — for one-hot
 * models (extra idle power).
 *
 * Side effect: writes the efficiency table to
 * hercules_efficiency_prod.csv, reused by the Fig 16/17 cluster benches.
 */
#include "bench/bench_common.h"
#include "core/profiler.h"
#include "util/table.h"

using namespace hercules;

int
main()
{
    bench::banner("Figure 15",
                  "6 models x 10 server architectures (offline "
                  "profiling)");

    core::ProfilerOptions popt;
    popt.search = bench::benchSearchOptions();
    core::EfficiencyTable table = core::offlineProfile(popt);
    table.writeCsv(bench::efficiencyCachePath());

    for (bool energy : {false, true}) {
        std::printf("-- normalized %s (T1 = 1.0) --\n",
                    energy ? "energy efficiency (QPS/W)"
                           : "throughput (QPS)");
        std::vector<std::string> header = {"Server"};
        for (model::ModelId mid : model::allModels())
            header.push_back(model::modelName(mid));
        TablePrinter t(header);
        for (hw::ServerType st : hw::allServerTypes()) {
            std::vector<std::string> row = {
                hw::serverSpec(st).name};
            for (model::ModelId mid : model::allModels()) {
                const core::EfficiencyEntry* e = table.get(st, mid);
                const core::EfficiencyEntry* base =
                    table.get(hw::ServerType::T1, mid);
                if (!e || !e->feasible || !base || !base->feasible) {
                    row.push_back("-");
                    continue;
                }
                double v = energy ? e->qps_per_watt / base->qps_per_watt
                                  : e->qps / base->qps;
                row.push_back(fmtDouble(v, 2));
            }
            t.addRow(row);
        }
        t.print();
        std::printf("\n");
    }

    // The per-model architecture winners.
    TablePrinter w({"Model", "Best QPS server", "Best QPS/W server"});
    for (model::ModelId mid : model::allModels()) {
        auto by_qps = table.rank(mid, false);
        auto by_eff = table.rank(mid, true);
        w.addRow({model::modelName(mid),
                  by_qps.empty() ? "-" : hw::serverSpec(by_qps[0]).name,
                  by_eff.empty() ? "-" : hw::serverSpec(by_eff[0]).name});
    }
    w.print();
    std::printf("\npaper: NMP-rich servers win the pooled DLRMs; "
                "V100 servers win the compute-heavy\nmodels; NMP adds "
                "only idle power for one-hot MT-WnD/DIN/DIEN.\n"
                "(efficiency table cached to %s)\n",
                bench::efficiencyCachePath().c_str());
    return 0;
}
