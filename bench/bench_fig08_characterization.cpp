/**
 * @file
 * Fig 8 — heterogeneity-aware cluster characterization:
 *  (a) latency-bounded energy efficiency of DLRM-RMC1 (20 ms SLA) and
 *      DLRM-RMC2 (50 ms) on CPU / CPU+NMP / CPU+GPU servers;
 *  (b) the two diurnal loads;
 *  (c) provisioned power of the NH, greedy and priority-aware
 *      schedulers over one day (availability 70 / 15 / 5).
 *
 * Reproduction targets: CPU+NMP ranks first for both models with a
 * larger efficiency margin on RMC2 (paper annotates 1.75x/2.04x over
 * CPU); greedy saves up to ~41.6% provisioned power over NH at peak;
 * priority-aware adds up to ~11.4% at peak over greedy.
 */
#include "bench/bench_common.h"
#include "cluster/cluster_manager.h"
#include "core/profiler.h"
#include "util/table.h"

using namespace hercules;

int
main()
{
    bench::banner("Figure 8",
                  "Cluster characterization: NH vs greedy vs "
                  "priority-aware");

    const std::vector<hw::ServerType> servers = {
        hw::ServerType::T2, hw::ServerType::T3, hw::ServerType::T7};
    const std::vector<model::ModelId> models = {
        model::ModelId::DlrmRmc1, model::ModelId::DlrmRmc2};

    // ---- (a) efficiency of the three server classes ------------------
    core::ProfilerOptions popt;
    popt.search = bench::benchSearchOptions();
    popt.servers = servers;
    popt.models = models;
    core::EfficiencyTable table = core::offlineProfile(popt);

    std::printf("-- Fig 8(a): latency-bounded energy efficiency --\n");
    TablePrinter ta({"Model", "Server", "QPS", "Power (W)", "QPS/W",
                     "vs CPU"});
    for (model::ModelId mid : models) {
        const core::EfficiencyEntry* cpu =
            table.get(hw::ServerType::T2, mid);
        for (hw::ServerType st : servers) {
            const core::EfficiencyEntry* e = table.get(st, mid);
            if (!e || !e->feasible)
                continue;
            double ratio = cpu && cpu->qps_per_watt > 0
                               ? e->qps_per_watt / cpu->qps_per_watt
                               : 0.0;
            ta.addRow({model::modelName(mid),
                       hw::serverSpec(st).name, fmtDouble(e->qps, 0),
                       fmtDouble(e->power_w, 0),
                       fmtDouble(e->qps_per_watt, 2),
                       fmtSpeedup(ratio)});
        }
    }
    ta.print();
    std::printf("paper: CPU+NMP > CPU+GPU > CPU for both; RMC2 gains "
                "more from NMP (2.04x) than RMC1 (1.75x)\n\n");

    // ---- (b) + (c) one-day provisioning ------------------------------
    cluster::ProvisionProblem problem =
        cluster::ProvisionProblem::fromTable(table, servers, models,
                                             {70, 15, 5});
    std::vector<cluster::ClusterWorkload> workloads(2);
    workloads[0].model = models[0];
    workloads[0].load.peak_qps = 50'000;
    workloads[0].load.seed = 1;
    workloads[1].model = models[1];
    workloads[1].load.peak_qps = 15'000;
    workloads[1].load.seed = 2;

    cluster::ClusterManagerOptions copt;
    cluster::NhProvisioner nh(3);
    cluster::GreedyProvisioner greedy;
    cluster::PriorityAwareProvisioner priority;
    cluster::HerculesProvisioner hercules;
    auto rn = cluster::runCluster(problem, workloads, nh, copt);
    auto rg = cluster::runCluster(problem, workloads, greedy, copt);
    auto rp = cluster::runCluster(problem, workloads, priority, copt);
    auto rh = cluster::runCluster(problem, workloads, hercules, copt);

    std::printf("-- Fig 8(b)(c): loads and provisioned power over one "
                "day --\n");
    TablePrinter tc({"Hour", "RMC1 load", "RMC2 load", "NH (kW)",
                     "Greedy (kW)", "Priority (kW)", "Hercules (kW)"});
    for (size_t i = 0; i < rn.intervals.size(); i += 4) {
        tc.addRow({fmtDouble(rn.intervals[i].t_hours, 1),
                   fmtEng(rn.intervals[i].loads[0], 1),
                   fmtEng(rn.intervals[i].loads[1], 1),
                   fmtDouble(rn.intervals[i].provisioned_power_w / 1e3, 1),
                   fmtDouble(rg.intervals[i].provisioned_power_w / 1e3, 1),
                   fmtDouble(rp.intervals[i].provisioned_power_w / 1e3, 1),
                   fmtDouble(rh.intervals[i].provisioned_power_w / 1e3,
                             1)});
    }
    tc.print();

    std::printf("\ngreedy vs NH:      peak %.1f%%, avg %.1f%% "
                "(paper: up to 41.6%% / 21.5%%)\n",
                (1.0 - rg.peak_power_w / rn.peak_power_w) * 100.0,
                (1.0 - rg.avg_power_w / rn.avg_power_w) * 100.0);
    std::printf("priority vs greedy: peak %.1f%%, avg %.1f%% "
                "(paper: up to 11.4%% / 4.2%%)\n",
                (1.0 - rp.peak_power_w / rg.peak_power_w) * 100.0,
                (1.0 - rp.avg_power_w / rg.avg_power_w) * 100.0);
    std::printf("Hercules vs greedy: peak %.1f%%, avg %.1f%%\n",
                (1.0 - rh.peak_power_w / rg.peak_power_w) * 100.0,
                (1.0 - rh.avg_power_w / rg.avg_power_w) * 100.0);
    std::printf("\nnote: the priority heuristic pays off only when the "
                "marginal gains line up\nwith the paper's measured "
                "tuples (our simulated tuples reverse them for the\n"
                "contested type); the LP-based Hercules scheduler wins "
                "in either case —\nexactly the paper's argument for a "
                "global optimization objective.\n");
    return 0;
}
