/**
 * @file
 * QoS under overload: a 3-service co-serving replay with a deliberate
 * 1.5x over-peak flash-crowd window (unforecast surge) and an
 * aggressive global power cap, comparing
 *
 *  - BASELINE: the pre-QoS stack — unbounded queues (admission none),
 *    priority-blind QPS/W power-cap shedding, every service
 *    provisioned to its instantaneous forecast;
 *  - QOS:      the qos subsystem on — deadline admission control,
 *    priority-ordered shedding (the high-priority service keeps
 *    capacity longest), and the throughput-tier low-priority service
 *    provisioned to mean demand instead of peak;
 *  - QOS+FB:   the QoS run with the latency-feedback router instead of
 *    the static tuple-weighted one — the head-to-head router
 *    comparison.
 *
 * The gate: with QoS enabled, the high-priority service's
 * violation+drop+reject rate must be strictly lower than the no-QoS
 * baseline's at equal-or-lower average provisioned power. Admission
 * control cannot game this — rejected queries count as violations —
 * so the win must come from capped queues (served queries stay
 * in-SLA), shed order (the high-priority service keeps its shards),
 * and mean-provisioning the deadline-relaxed service.
 *
 * All three scenarios replay bitwise-identical merged traces (same
 * specs, seeds and surge). Results land in BENCH_qos.json.
 *
 * Fast mode (HERCULES_BENCH_FAST=1): 2 services on T2+T3, 6h horizon.
 */
#include <algorithm>
#include <chrono>
#include <limits>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster_manager.h"
#include "cluster/serving.h"
#include "core/profiler.h"
#include "qos/qos.h"
#include "util/table.h"

using namespace hercules;

namespace {

using Clock = std::chrono::steady_clock;

core::EfficiencyTable
loadOrProfile(const std::vector<hw::ServerType>& fleet,
              const std::vector<model::ModelId>& models)
{
    // Same fleet x model grid as bench_multiservice: share its cache
    // so a CI run that already profiled it warm-starts here.
    std::string cache = bench::fastMode()
                            ? "hercules_efficiency_multiservice_fast.csv"
                            : "hercules_efficiency_multiservice.csv";
    if (auto cached = bench::tryLoadCachedTable(cache))
        return *cached;
    std::printf("profiling the shard fleet (%zu types x %zu models)"
                "...\n\n",
                fleet.size(), models.size());
    core::ProfilerOptions popt;
    popt.search = bench::benchSearchOptions();
    popt.servers = fleet;
    popt.models = models;
    core::EfficiencyTable t = core::offlineProfile(popt);
    t.writeCsv(cache);
    return t;
}

/** One scenario's aggregate view. */
struct ScenarioResult
{
    std::string name;
    double avg_provisioned_w = 0.0;
    double avg_consumed_w = 0.0;
    size_t completed = 0;
    size_t dropped = 0;
    size_t rejected = 0;
    size_t sla_violations = 0;
    double sla_violation_rate = 0.0;
    double p99_ms = 0.0;
    double wall_ms = 0.0;
    std::vector<sim::ServiceRunStats> services;
    std::vector<sim::IntervalStats> intervals;
};

ScenarioResult
runScenario(const std::string& name, const core::EfficiencyTable& table,
            const std::vector<hw::ServerType>& fleet,
            const std::vector<int>& slots,
            const std::vector<cluster::ServiceSpec>& services,
            const cluster::TraceServeOptions& opt)
{
    cluster::HerculesProvisioner provisioner;
    Clock::time_point t0 = Clock::now();
    cluster::MultiServeResult r = cluster::serveTraces(
        table, fleet, slots, services, provisioner, opt);
    ScenarioResult out;
    out.name = name;
    out.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    out.avg_provisioned_w = r.sim.avg_provisioned_power_w;
    out.avg_consumed_w = r.sim.avg_consumed_power_w;
    out.completed = r.sim.completed;
    out.dropped = r.sim.dropped;
    out.rejected = r.sim.rejected;
    out.sla_violations = r.sim.sla_violations;
    out.sla_violation_rate = r.sim.sla_violation_rate;
    out.p99_ms = r.sim.p99_ms;
    out.services = r.sim.services;
    out.intervals = r.sim.intervals;
    return out;
}

void
printScenario(const ScenarioResult& r,
              const std::vector<model::ModelId>& models)
{
    std::printf("%s:\n", r.name.c_str());
    TablePrinter t({"Service", "Completed", "Rejected", "Dropped",
                    "p99 (ms)", "SLA (ms)", "Viol rate"});
    for (size_t s = 0; s < r.services.size(); ++s) {
        const sim::ServiceRunStats& svc = r.services[s];
        t.addRow({model::modelName(models[s]),
                  std::to_string(svc.completed),
                  std::to_string(svc.rejected),
                  std::to_string(svc.dropped),
                  fmtDouble(svc.p99_ms, 2), fmtDouble(svc.sla_ms, 0),
                  fmtPercent(svc.sla_violation_rate, 2)});
    }
    t.print();
    std::printf("  avg power %.3f kW provisioned / %.3f kW consumed, "
                "violation rate %.2f%%, p99 %.2f ms, wall %.0f ms\n\n",
                r.avg_provisioned_w / 1e3, r.avg_consumed_w / 1e3,
                r.sla_violation_rate * 100.0, r.p99_ms, r.wall_ms);
}

void
writeScenarioJson(FILE* f, const ScenarioResult& r,
                  const std::vector<model::ModelId>& models, bool last)
{
    std::fprintf(f, "  \"%s\": {\n", r.name.c_str());
    std::fprintf(f, "      \"avg_provisioned_power_w\": %.2f,\n",
                 r.avg_provisioned_w);
    std::fprintf(f, "      \"avg_consumed_power_w\": %.2f,\n",
                 r.avg_consumed_w);
    std::fprintf(f, "      \"completed\": %zu,\n", r.completed);
    std::fprintf(f, "      \"rejected\": %zu,\n", r.rejected);
    std::fprintf(f, "      \"dropped\": %zu,\n", r.dropped);
    std::fprintf(f, "      \"sla_violations\": %zu,\n",
                 r.sla_violations);
    std::fprintf(f, "      \"sla_violation_rate\": %.6f,\n",
                 r.sla_violation_rate);
    std::fprintf(f, "      \"p99_ms\": %.4f,\n", r.p99_ms);
    std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
    std::fprintf(f, "      \"per_service\": [\n");
    for (size_t s = 0; s < r.services.size(); ++s) {
        const sim::ServiceRunStats& svc = r.services[s];
        std::fprintf(
            f,
            "        {\"model\": \"%s\", \"completed\": %zu, "
            "\"rejected\": %zu, \"dropped\": %zu, \"p50_ms\": %.4f, "
            "\"p99_ms\": %.4f, \"sla_violations\": %zu, "
            "\"sla_violation_rate\": %.6f}%s\n",
            model::modelName(models[s]), svc.completed, svc.rejected,
            svc.dropped, svc.p50_ms, svc.p99_ms, svc.sla_violations,
            svc.sla_violation_rate,
            s + 1 < r.services.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    bench::writeIntervalArrays(f, r.intervals);
    std::fprintf(f, "  }%s\n", last ? "" : ",");
}

}  // namespace

int
main()
{
    bench::banner("QoS under overload",
                  "Deadline admission + priority shedding + feedback "
                  "routing vs the pre-QoS stack on a surge + power cap");

    const bool fast = bench::fastMode();
    const std::vector<hw::ServerType> fleet =
        fast ? std::vector<hw::ServerType>{hw::ServerType::T2,
                                           hw::ServerType::T3}
             : std::vector<hw::ServerType>{hw::ServerType::T2,
                                           hw::ServerType::T3,
                                           hw::ServerType::T7};
    // Fast mode keeps the 2-type fleet (cheap profiling) but enough
    // servers that whole-server shedding is a graded decision rather
    // than an all-or-nothing cliff.
    const std::vector<int> slots = fast ? std::vector<int>{3, 2}
                                        : std::vector<int>{2, 2, 1};
    // Service 0 is the high-priority user-facing one — deliberately
    // RMC2, the *least* power-efficient model on this fleet, so the
    // baseline's priority-blind QPS/W shedding victimizes exactly the
    // service that matters most. The big efficient RMC1 rides last as
    // the low-priority throughput-tier service.
    std::vector<model::ModelId> model_ids =
        fast ? std::vector<model::ModelId>{model::ModelId::DlrmRmc2,
                                           model::ModelId::DlrmRmc1}
             : std::vector<model::ModelId>{model::ModelId::DlrmRmc2,
                                           model::ModelId::DlrmRmc3,
                                           model::ModelId::DlrmRmc1};

    core::EfficiencyTable table = loadOrProfile(fleet, model_ids);

    const size_t S = model_ids.size();
    std::vector<double> capacity(S, 0.0);
    for (size_t s = 0; s < S; ++s) {
        for (size_t h = 0; h < fleet.size(); ++h) {
            const core::EfficiencyEntry* e =
                table.get(fleet[h], model_ids[s]);
            if (e != nullptr && e->feasible)
                capacity[s] += slots[h] * e->qps;
        }
        if (capacity[s] <= 0.0) {
            std::printf("%s infeasible on this fleet — abort\n",
                        model::modelName(model_ids[s]));
            return 1;
        }
    }

    cluster::TraceServeOptions opt;
    // Even fast mode keeps a near-full day: the throughput tier's
    // mean-provisioning only saves power when the horizon actually
    // contains the diurnal troughs, not just the near-peak slice.
    opt.horizon_hours = fast ? 18.0 : 24.0;
    opt.interval_hours = 0.5;
    opt.trace.time_compression = fast ? 960.0 : 480.0;
    opt.trace.seed = 42;

    // Phase-shifted services; service 0 is the high-priority
    // user-facing one. The flash crowd hits a 2h window around service
    // 0's peak: inside it the *actual* demand of every service is
    // 1.5x its curve (1.5x over-peak for service 0), while the
    // provisioner keeps planning on the un-surged forecast.
    const double surge_hour = fast ? 1.5 : 19.0;
    const double surge_hours = 2.0;
    const double surge_factor = 1.5;
    std::vector<cluster::ServiceSpec> base(S);
    for (size_t s = 0; s < S; ++s) {
        // Sized so the joint *forecast* provisioning stays feasible at
        // every hour (the baseline must not be a starved strawman):
        // overload comes from the unforecast surge and the power cap.
        double peak_frac = fast ? 0.25 : 0.18;
        if (!fast && model_ids[s] == model::ModelId::DlrmRmc2) {
            // Same shaping as bench_multiservice: the small service
            // ranks fewer candidates so its rare giant queries stay
            // servable within SLA at all.
            peak_frac = 0.12;
            base[s].sizes.sigma = 0.7;
            base[s].sizes.max_size = 300;
        }
        base[s].model = model_ids[s];
        base[s].load.peak_qps = peak_frac * capacity[s];
        base[s].load.trough_frac = 0.35;
        // Service 0 peaks inside the surge window; later services are
        // phase-shifted away from it (co-serving rides the offsets).
        base[s].load.peak_hour =
            fast ? 2.0 + 8.0 * static_cast<double>(s)
                 : 20.0 - 8.0 * static_cast<double>(s);
        base[s].load.seed = 5 + s;
        base[s].load.surge_hour = surge_hour;
        base[s].load.surge_hours = surge_hours;
        base[s].load.surge_factor = surge_factor;
    }

    // Over-provision rate (forecast ramp + tail headroom, as in
    // bench_multiservice) — shared by all scenarios.
    const double kTailHeadroom = 0.15;
    double r_est = 0.0;
    for (size_t s = 0; s < S; ++s)
        r_est = std::max(
            r_est, cluster::estimateOverprovisionRate(
                       workload::DiurnalLoad(base[s].load),
                       opt.interval_hours, opt.horizon_hours));
    opt.overprovision_rate = r_est + kTailHeadroom;

    // The aggressive power cap: sweep the forecast interval grid with
    // the same provisioner, find the hungriest interval's requested
    // power, and set the cap half of that interval's cheapest
    // allocated server *below* it. Whole servers are then shed exactly
    // when the fleet is fullest — which is the surge window, since it
    // rides service 0's peak — without dipping into shed-to-empty
    // territory.
    cluster::ProvisionProblem problem =
        cluster::ProvisionProblem::fromTable(table, fleet, model_ids,
                                             slots);
    cluster::HerculesProvisioner capref;
    std::vector<workload::DiurnalLoad> cap_curves;
    for (size_t s = 0; s < S; ++s)
        cap_curves.emplace_back(base[s].load);
    double peak_power = 0.0;
    double cheapest_at_peak =
        std::numeric_limits<double>::infinity();
    for (double t = 0.0; t < opt.horizon_hours;
         t += opt.interval_hours) {
        std::vector<double> loads_t;
        for (size_t s = 0; s < S; ++s)
            loads_t.push_back(cap_curves[s].forecastAt(t));
        cluster::Allocation alloc =
            capref.provision(problem, loads_t, opt.overprovision_rate);
        double p = alloc.provisionedPowerW(problem);
        if (p > peak_power) {
            peak_power = p;
            cheapest_at_peak =
                std::numeric_limits<double>::infinity();
            for (int h = 0; h < problem.numServers(); ++h)
                for (int m = 0; m < problem.numModels(); ++m)
                    if (alloc.n[static_cast<size_t>(h)]
                               [static_cast<size_t>(m)] > 0)
                        cheapest_at_peak = std::min(
                            cheapest_at_peak,
                            problem.perf(h, m).power_w);
        }
    }
    opt.power_cap_w = peak_power - 0.5 * cheapest_at_peak;

    std::printf("horizon %.0fh, surge %.1fx in [%.1fh, %.1fh), power "
                "cap %.3f kW, R %.1f%%\n\n",
                opt.horizon_hours, surge_factor, surge_hour,
                surge_hour + surge_hours, opt.power_cap_w / 1e3,
                opt.overprovision_rate * 100.0);

    // ---- scenario 1: the pre-QoS stack --------------------------------
    ScenarioResult baseline =
        runScenario("baseline", table, fleet, slots, base, opt);
    printScenario(baseline, model_ids);

    // ---- scenario 2: QoS on -------------------------------------------
    // Service 0 is high-priority latency-tier; the last service is the
    // deadline-relaxed throughput-tier one (provisioned to mean
    // demand); priorities descend with the service index.
    std::vector<cluster::ServiceSpec> qos_specs = base;
    for (size_t s = 0; s < S; ++s) {
        qos_specs[s].qos.priority = static_cast<int>(S - 1 - s);
        qos_specs[s].qos.tier = s + 1 == S ? qos::Tier::Throughput
                                           : qos::Tier::Latency;
    }
    cluster::TraceServeOptions qopt = opt;
    qopt.admission.policy = qos::AdmissionPolicy::Deadline;
    qopt.admission.deadline_slack = 1.0;
    ScenarioResult qos_run =
        runScenario("qos", table, fleet, slots, qos_specs, qopt);
    printScenario(qos_run, model_ids);

    // ---- scenario 3: QoS + latency-feedback router --------------------
    cluster::TraceServeOptions fopt = qopt;
    fopt.router = sim::RouterPolicy::LatencyFeedback;
    ScenarioResult fb_run = runScenario("qos_feedback", table, fleet,
                                        slots, qos_specs, fopt);
    printScenario(fb_run, model_ids);

    // ---- the QoS gate --------------------------------------------------
    const sim::ServiceRunStats& hi_base = baseline.services[0];
    const sim::ServiceRunStats& hi_qos = qos_run.services[0];
    bool sla_ok =
        hi_qos.sla_violation_rate < hi_base.sla_violation_rate;
    bool power_ok =
        qos_run.avg_provisioned_w <= baseline.avg_provisioned_w + 1e-6;
    bool ok = sla_ok && power_ok;
    std::printf("qos vs baseline, high-priority %s: %s "
                "(violation+drop rate %.3f%% vs %.3f%%, avg power "
                "%.3f vs %.3f kW)\n",
                model::modelName(model_ids[0]), ok ? "WINS" : "FAIL",
                hi_qos.sla_violation_rate * 100.0,
                hi_base.sla_violation_rate * 100.0,
                qos_run.avg_provisioned_w / 1e3,
                baseline.avg_provisioned_w / 1e3);
    std::printf("router head-to-head under QoS, cluster-wide: "
                "hercules %.3f%% vs latency-feedback %.3f%% violations "
                "(p99 %.2f vs %.2f ms)\n",
                qos_run.sla_violation_rate * 100.0,
                fb_run.sla_violation_rate * 100.0, qos_run.p99_ms,
                fb_run.p99_ms);

    // ---- JSON trajectory ----------------------------------------------
    FILE* f = std::fopen("BENCH_qos.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        bench::writeJsonProvenance(f);
        std::fprintf(f, "  \"horizon_hours\": %.2f,\n",
                     opt.horizon_hours);
        std::fprintf(f, "  \"interval_hours\": %.2f,\n",
                     opt.interval_hours);
        std::fprintf(f, "  \"time_compression\": %.0f,\n",
                     opt.trace.time_compression);
        std::fprintf(f, "  \"num_services\": %zu,\n", S);
        std::fprintf(f, "  \"surge_hour\": %.2f,\n", surge_hour);
        std::fprintf(f, "  \"surge_hours\": %.2f,\n", surge_hours);
        std::fprintf(f, "  \"surge_factor\": %.2f,\n", surge_factor);
        std::fprintf(f, "  \"power_cap_w\": %.2f,\n", opt.power_cap_w);
        std::fprintf(f, "  \"qos_beats_baseline\": %s,\n",
                     ok ? "true" : "false");
        std::fprintf(f, "  \"services\": [\n");
        for (size_t s = 0; s < S; ++s) {
            std::fprintf(
                f,
                "    {\"model\": \"%s\", \"peak_qps\": %.1f, "
                "\"peak_hour\": %.2f, \"priority\": %d, "
                "\"tier\": \"%s\"}%s\n",
                model::modelName(model_ids[s]), base[s].load.peak_qps,
                base[s].load.peak_hour, qos_specs[s].qos.priority,
                qos::tierName(qos_specs[s].qos.tier),
                s + 1 < S ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        writeScenarioJson(f, baseline, model_ids, false);
        writeScenarioJson(f, qos_run, model_ids, false);
        writeScenarioJson(f, fb_run, model_ids, true);
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_qos.json\n");
    }

    return ok ? 0 : 1;
}
