/**
 * @file
 * QoS under overload: a 3-service co-serving replay with a deliberate
 * 1.5x over-peak flash-crowd window (unforecast surge) and an
 * aggressive global power cap. The three arms are the shipped
 * scenario specs — this bench only computes the power cap (a function
 * of the profiled table) and applies it as a delta:
 *
 *  - BASELINE: scenarios/flash_crowd_surge.scn — the pre-QoS stack:
 *    unbounded queues (admission none), priority-blind QPS/W power-cap
 *    shedding, every service provisioned to its instantaneous
 *    forecast;
 *  - QOS:      scenarios/priority_tiered_qos.scn — deadline admission
 *    control (with cross-shard retry), priority-ordered shedding (the
 *    high-priority service keeps capacity longest), and the
 *    throughput-tier low-priority service provisioned to mean demand;
 *  - QOS+FB:   scenarios/feedback_router.scn — the QoS arm with the
 *    latency-feedback router instead of the static tuple-weighted one.
 *
 * The gate: with QoS enabled, the high-priority service's
 * violation+drop+reject rate must be strictly lower than the no-QoS
 * baseline's at equal-or-lower average provisioned power. Admission
 * control cannot game this — rejected queries count as violations —
 * so the win must come from capped queues (served queries stay
 * in-SLA), shed order (the high-priority service keeps its shards),
 * and mean-provisioning the deadline-relaxed service.
 *
 * All three scenarios replay bitwise-identical merged traces (same
 * specs, seeds and surge). Results land in BENCH_qos.json.
 *
 * Fast mode (HERCULES_BENCH_FAST=1): 2 services on T2+T3, 18h horizon.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/cluster_manager.h"
#include "scenario/scenario.h"
#include "util/table.h"

using namespace hercules;

namespace {

/** One scenario arm's aggregate view. */
struct ArmResult
{
    std::string name;
    double avg_provisioned_w = 0.0;
    double avg_consumed_w = 0.0;
    size_t completed = 0;
    size_t dropped = 0;
    size_t rejected = 0;
    size_t admission_retries = 0;
    size_t sla_violations = 0;
    double sla_violation_rate = 0.0;
    double p99_ms = 0.0;
    double wall_ms = 0.0;
    std::vector<sim::ServiceRunStats> services;
    std::vector<sim::IntervalStats> intervals;
};

ArmResult
runArm(const std::string& name, const scenario::ScenarioSpec& spec,
       const core::EfficiencyTable& table)
{
    scenario::ScenarioResult r = scenario::run(spec, &table);
    ArmResult out;
    out.name = name;
    out.wall_ms = r.serve_wall_ms;
    out.avg_provisioned_w = r.serve.sim.avg_provisioned_power_w;
    out.avg_consumed_w = r.serve.sim.avg_consumed_power_w;
    out.completed = r.serve.sim.completed;
    out.dropped = r.serve.sim.dropped;
    out.rejected = r.serve.sim.rejected;
    out.admission_retries = r.serve.sim.admission_retries;
    out.sla_violations = r.serve.sim.sla_violations;
    out.sla_violation_rate = r.serve.sim.sla_violation_rate;
    out.p99_ms = r.serve.sim.p99_ms;
    out.services = r.serve.sim.services;
    out.intervals = r.serve.sim.intervals;
    return out;
}

void
printArm(const ArmResult& r, const std::vector<model::ModelId>& models)
{
    std::printf("%s:\n", r.name.c_str());
    TablePrinter t({"Service", "Completed", "Rejected", "Dropped",
                    "p99 (ms)", "SLA (ms)", "Viol rate"});
    for (size_t s = 0; s < r.services.size(); ++s) {
        const sim::ServiceRunStats& svc = r.services[s];
        t.addRow({model::modelName(models[s]),
                  std::to_string(svc.completed),
                  std::to_string(svc.rejected),
                  std::to_string(svc.dropped),
                  fmtDouble(svc.p99_ms, 2), fmtDouble(svc.sla_ms, 0),
                  fmtPercent(svc.sla_violation_rate, 2)});
    }
    t.print();
    std::printf("  avg power %.3f kW provisioned / %.3f kW consumed, "
                "violation rate %.2f%%, p99 %.2f ms, retries %zu, "
                "wall %.0f ms\n\n",
                r.avg_provisioned_w / 1e3, r.avg_consumed_w / 1e3,
                r.sla_violation_rate * 100.0, r.p99_ms,
                r.admission_retries, r.wall_ms);
}

void
writeArmJson(FILE* f, const ArmResult& r,
             const std::vector<model::ModelId>& models, bool last)
{
    std::fprintf(f, "  \"%s\": {\n", r.name.c_str());
    std::fprintf(f, "      \"avg_provisioned_power_w\": %.2f,\n",
                 r.avg_provisioned_w);
    std::fprintf(f, "      \"avg_consumed_power_w\": %.2f,\n",
                 r.avg_consumed_w);
    std::fprintf(f, "      \"completed\": %zu,\n", r.completed);
    std::fprintf(f, "      \"rejected\": %zu,\n", r.rejected);
    std::fprintf(f, "      \"admission_retries\": %zu,\n",
                 r.admission_retries);
    std::fprintf(f, "      \"dropped\": %zu,\n", r.dropped);
    std::fprintf(f, "      \"sla_violations\": %zu,\n",
                 r.sla_violations);
    std::fprintf(f, "      \"sla_violation_rate\": %.6f,\n",
                 r.sla_violation_rate);
    std::fprintf(f, "      \"p99_ms\": %.4f,\n", r.p99_ms);
    std::fprintf(f, "      \"wall_ms\": %.1f,\n", r.wall_ms);
    std::fprintf(f, "      \"per_service\": [\n");
    for (size_t s = 0; s < r.services.size(); ++s) {
        const sim::ServiceRunStats& svc = r.services[s];
        std::fprintf(
            f,
            "        {\"model\": \"%s\", \"completed\": %zu, "
            "\"rejected\": %zu, \"dropped\": %zu, \"p50_ms\": %.4f, "
            "\"p99_ms\": %.4f, \"sla_violations\": %zu, "
            "\"sla_violation_rate\": %.6f}%s\n",
            model::modelName(models[s]), svc.completed, svc.rejected,
            svc.dropped, svc.p50_ms, svc.p99_ms, svc.sla_violations,
            svc.sla_violation_rate,
            s + 1 < r.services.size() ? "," : "");
    }
    std::fprintf(f, "      ],\n");
    bench::writeIntervalArrays(f, r.intervals);
    std::fprintf(f, "  }%s\n", last ? "" : ",");
}

/**
 * Fast-mode deltas, applied identically to every arm so the three
 * scenarios keep replaying the same merged trace: 2 services on a
 * 5-slot T2+T3 fleet, 18h horizon (the throughput tier's
 * mean-provisioning only saves power when the horizon contains the
 * diurnal troughs), surge at 1.5h. The arm's router/admission settings
 * — the deltas between the shipped files — are preserved.
 */
void
applyFastDeltas(scenario::ScenarioSpec& spec, bool qos_on)
{
    spec.fleet = {{hw::ServerType::T2, 3}, {hw::ServerType::T3, 2}};
    const std::vector<model::ModelId> ids = {model::ModelId::DlrmRmc2,
                                             model::ModelId::DlrmRmc1};
    spec.services.clear();
    for (size_t s = 0; s < ids.size(); ++s) {
        scenario::ServiceScenario svc;
        svc.spec.model = ids[s];
        svc.peak_qps_frac = 0.25;
        svc.spec.load.trough_frac = 0.35;
        svc.spec.load.peak_hour = 2.0 + 8.0 * static_cast<double>(s);
        svc.spec.load.seed = 5 + s;
        svc.spec.load.surge_hour = 1.5;
        svc.spec.load.surge_hours = 2.0;
        svc.spec.load.surge_factor = 1.5;
        if (qos_on) {
            svc.spec.qos.priority =
                static_cast<int>(ids.size() - 1 - s);
            svc.spec.qos.tier = s + 1 == ids.size()
                                    ? qos::Tier::Throughput
                                    : qos::Tier::Latency;
        }
        spec.services.push_back(svc);
    }
    spec.serve.horizon_hours = 18.0;
    spec.serve.trace.time_compression = 960.0;
    spec.profile.table_cache =
        "hercules_efficiency_multiservice_fast.csv";
    spec.profile.num_queries = 250;
    spec.profile.warmup_queries = 50;
    spec.profile.bisect_iters = 4;
}

}  // namespace

int
main()
{
    bench::banner("QoS under overload",
                  "Deadline admission + priority shedding + feedback "
                  "routing vs the pre-QoS stack on a surge + power cap");

    const bool fast = bench::fastMode();
    scenario::ScenarioSpec base =
        bench::loadScenario("flash_crowd_surge.scn");
    scenario::ScenarioSpec qos_spec =
        bench::loadScenario("priority_tiered_qos.scn");
    scenario::ScenarioSpec fb_spec =
        bench::loadScenario("feedback_router.scn");
    if (fast) {
        applyFastDeltas(base, false);
        applyFastDeltas(qos_spec, true);
        applyFastDeltas(fb_spec, true);
    }

    core::EfficiencyTable table = scenario::profileTable(base);
    scenario::resolvePeaks(base, table);
    scenario::resolvePeaks(qos_spec, table);
    scenario::resolvePeaks(fb_spec, table);

    const size_t S = base.services.size();
    std::vector<model::ModelId> model_ids;
    std::vector<hw::ServerType> fleet;
    std::vector<int> slots;
    for (const scenario::ServiceScenario& s : base.services)
        model_ids.push_back(s.spec.model);
    for (const scenario::FleetEntry& e : base.fleet) {
        fleet.push_back(e.type);
        slots.push_back(e.shard_slots);
    }
    for (size_t s = 0; s < S; ++s) {
        if (base.services[s].spec.load.peak_qps <= 0.0) {
            std::printf("%s infeasible on this fleet — abort\n",
                        model::modelName(model_ids[s]));
            return 1;
        }
    }

    // Over-provision rate (forecast ramp + tail headroom, as in
    // bench_multiservice) — shared by all arms.
    const double kTailHeadroom = 0.15;
    double r_est = 0.0;
    for (size_t s = 0; s < S; ++s)
        r_est = std::max(
            r_est,
            cluster::estimateOverprovisionRate(
                workload::DiurnalLoad(base.services[s].spec.load),
                base.serve.interval_hours, base.serve.horizon_hours));
    const double r_shared = r_est + kTailHeadroom;

    // The aggressive power cap: sweep the forecast interval grid with
    // the same provisioner, find the hungriest interval's requested
    // power, and set the cap half of that interval's cheapest
    // allocated server *below* it. Whole servers are then shed exactly
    // when the fleet is fullest — which is the surge window, since it
    // rides service 0's peak — without dipping into shed-to-empty
    // territory.
    cluster::ProvisionProblem problem =
        cluster::ProvisionProblem::fromTable(table, fleet, model_ids,
                                             slots);
    cluster::HerculesProvisioner capref;
    std::vector<workload::DiurnalLoad> cap_curves;
    for (size_t s = 0; s < S; ++s)
        cap_curves.emplace_back(base.services[s].spec.load);
    double peak_power = 0.0;
    double cheapest_at_peak =
        std::numeric_limits<double>::infinity();
    for (double t = 0.0; t < base.serve.horizon_hours;
         t += base.serve.interval_hours) {
        std::vector<double> loads_t;
        for (size_t s = 0; s < S; ++s)
            loads_t.push_back(cap_curves[s].forecastAt(t));
        cluster::Allocation alloc =
            capref.provision(problem, loads_t, r_shared);
        double p = alloc.provisionedPowerW(problem);
        if (p > peak_power) {
            peak_power = p;
            cheapest_at_peak =
                std::numeric_limits<double>::infinity();
            for (int h = 0; h < problem.numServers(); ++h)
                for (int m = 0; m < problem.numModels(); ++m)
                    if (alloc.n[static_cast<size_t>(h)]
                               [static_cast<size_t>(m)] > 0)
                        cheapest_at_peak = std::min(
                            cheapest_at_peak,
                            problem.perf(h, m).power_w);
        }
    }
    const double cap_w = peak_power - 0.5 * cheapest_at_peak;

    // The computed knobs are the only non-file deltas, shared by all
    // arms so the comparison isolates the QoS policies themselves.
    for (scenario::ScenarioSpec* spec : {&base, &qos_spec, &fb_spec}) {
        spec->serve.overprovision_rate = r_shared;
        spec->serve.power_cap_w = cap_w;
    }

    const double surge_hour = base.services[0].spec.load.surge_hour;
    const double surge_hours = base.services[0].spec.load.surge_hours;
    std::printf("horizon %.0fh, surge %.1fx in [%.1fh, %.1fh), power "
                "cap %.3f kW, R %.1f%%\n\n",
                base.serve.horizon_hours,
                base.services[0].spec.load.surge_factor, surge_hour,
                surge_hour + surge_hours, cap_w / 1e3,
                r_shared * 100.0);

    // ---- the three arms -----------------------------------------------
    ArmResult baseline = runArm("baseline", base, table);
    printArm(baseline, model_ids);
    ArmResult qos_run = runArm("qos", qos_spec, table);
    printArm(qos_run, model_ids);
    ArmResult fb_run = runArm("qos_feedback", fb_spec, table);
    printArm(fb_run, model_ids);

    // ---- the QoS gate --------------------------------------------------
    const sim::ServiceRunStats& hi_base = baseline.services[0];
    const sim::ServiceRunStats& hi_qos = qos_run.services[0];
    bool sla_ok =
        hi_qos.sla_violation_rate < hi_base.sla_violation_rate;
    bool power_ok =
        qos_run.avg_provisioned_w <= baseline.avg_provisioned_w + 1e-6;
    bool ok = sla_ok && power_ok;
    std::printf("qos vs baseline, high-priority %s: %s "
                "(violation+drop rate %.3f%% vs %.3f%%, avg power "
                "%.3f vs %.3f kW)\n",
                model::modelName(model_ids[0]), ok ? "WINS" : "FAIL",
                hi_qos.sla_violation_rate * 100.0,
                hi_base.sla_violation_rate * 100.0,
                qos_run.avg_provisioned_w / 1e3,
                baseline.avg_provisioned_w / 1e3);
    std::printf("router head-to-head under QoS, cluster-wide: "
                "hercules %.3f%% vs latency-feedback %.3f%% violations "
                "(p99 %.2f vs %.2f ms)\n",
                qos_run.sla_violation_rate * 100.0,
                fb_run.sla_violation_rate * 100.0, qos_run.p99_ms,
                fb_run.p99_ms);

    // ---- JSON trajectory ----------------------------------------------
    FILE* f = std::fopen("BENCH_qos.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        bench::writeJsonProvenance(f);
        std::fprintf(f, "  \"scenarios\": [\"%s\", \"%s\", \"%s\"],\n",
                     base.name.c_str(), qos_spec.name.c_str(),
                     fb_spec.name.c_str());
        std::fprintf(f, "  \"horizon_hours\": %.2f,\n",
                     base.serve.horizon_hours);
        std::fprintf(f, "  \"interval_hours\": %.2f,\n",
                     base.serve.interval_hours);
        std::fprintf(f, "  \"time_compression\": %.0f,\n",
                     base.serve.trace.time_compression);
        std::fprintf(f, "  \"num_services\": %zu,\n", S);
        std::fprintf(f, "  \"surge_hour\": %.2f,\n", surge_hour);
        std::fprintf(f, "  \"surge_hours\": %.2f,\n", surge_hours);
        std::fprintf(f, "  \"surge_factor\": %.2f,\n",
                     base.services[0].spec.load.surge_factor);
        std::fprintf(f, "  \"power_cap_w\": %.2f,\n", cap_w);
        std::fprintf(f, "  \"qos_beats_baseline\": %s,\n",
                     ok ? "true" : "false");
        std::fprintf(f, "  \"services\": [\n");
        for (size_t s = 0; s < S; ++s) {
            const scenario::ServiceScenario& qs = qos_spec.services[s];
            std::fprintf(
                f,
                "    {\"model\": \"%s\", \"peak_qps\": %.1f, "
                "\"peak_hour\": %.2f, \"priority\": %d, "
                "\"tier\": \"%s\"}%s\n",
                model::modelName(model_ids[s]),
                base.services[s].spec.load.peak_qps,
                base.services[s].spec.load.peak_hour,
                qs.spec.qos.priority, qos::tierName(qs.spec.qos.tier),
                s + 1 < S ? "," : "");
        }
        std::fprintf(f, "  ],\n");
        writeArmJson(f, baseline, model_ids, false);
        writeArmJson(f, qos_run, model_ids, false);
        writeArmJson(f, fb_run, model_ids, true);
        std::fprintf(f, "}\n");
        std::fclose(f);
        std::printf("\nwrote BENCH_qos.json\n");
    }

    return ok ? 0 : 1;
}
