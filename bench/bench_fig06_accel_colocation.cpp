/**
 * @file
 * Fig 6 — accelerator-side scheduling policies on the small model
 * variants (the paper's V100 characterization): (1) DeepRecSys — one
 * model, no fusion; (2) Baymax — model co-location only; (3) model
 * co-location + query fusion.
 *
 * Reproduction targets: Baymax >= DeepRecSys (up to 1.66x / 1.03x /
 * 1.36x for RMC3 / MT-WnD / DIN), co-location + fusion far ahead of
 * Baymax (2.95x / 7.87x / 6.0x QPS; 2.29x / 3.14x / 3.36x QPS/W).
 */
#include "bench/bench_common.h"
#include "sched/baselines.h"
#include "util/table.h"

using namespace hercules;

int
main()
{
    bench::banner("Figure 6",
                  "Accelerator policies: DeepRecSys vs Baymax vs "
                  "co-location + fusion (V100, small variants)");

    const hw::ServerSpec& server = hw::serverSpec(hw::ServerType::T7);
    sched::SearchOptions opt = bench::benchSearchOptions();

    const std::vector<model::ModelId> models = {
        model::ModelId::DlrmRmc3, model::ModelId::MtWnd,
        model::ModelId::Din};

    TablePrinter t({"Model", "SLA (ms)", "DRS QPS", "Baymax QPS",
                    "Fusion QPS", "Bay/DRS", "Fus/Bay", "DRS QPS/W",
                    "Bay QPS/W", "Fus QPS/W", "winning config"});

    for (model::ModelId id : models) {
        model::Model m = model::buildModel(id, model::Variant::Small);
        double bay_best = 0.0, fus_best = 0.0;
        for (double sla : {25.0, 50.0, 100.0}) {
            sched::SearchResult drs =
                sched::deepRecSysGpuSearch(server, m, sla, opt);
            sched::SearchResult bay =
                sched::baymaxSearch(server, m, sla, opt);
            sched::SearchResult fus = sched::gradientSearchMapping(
                server, m, sched::Mapping::GpuModelBased, sla, opt);
            double d = drs.best ? drs.best_qps : 0.0;
            double b = bay.best ? bay.best_qps : 0.0;
            double f = fus.best ? fus.best_qps : 0.0;
            if (d > 0.0) {
                bay_best = std::max(bay_best, b / d);
            }
            if (b > 0.0)
                fus_best = std::max(fus_best, f / b);
            t.addRow({
                model::modelName(id), fmtDouble(sla, 0), fmtDouble(d, 0),
                fmtDouble(b, 0), fmtDouble(f, 0),
                d > 0 ? fmtSpeedup(b / d) : "-",
                b > 0 ? fmtSpeedup(f / b) : "-",
                drs.best ? fmtDouble(drs.best_point.result.qps_per_watt, 1)
                         : "-",
                bay.best ? fmtDouble(bay.best_point.result.qps_per_watt, 1)
                         : "-",
                fus.best ? fmtDouble(fus.best_point.result.qps_per_watt, 1)
                         : "-",
                fus.best ? fus.best->str() : "-",
            });
        }
        std::printf("%s: max Baymax/DRS = %.2fx (paper RMC3 1.66x, "
                    "MT-WnD 1.03x, DIN 1.36x); max Fusion/Baymax = %.2fx "
                    "(paper 2.95x / 7.87x / 6.0x)\n",
                    model::modelName(id), bay_best, fus_best);
    }
    std::printf("\n");
    t.print();
    return 0;
}
