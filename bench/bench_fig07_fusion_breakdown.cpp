/**
 * @file
 * Fig 7 — latency breakdown (queuing / data loading / model inference)
 * and GPU utilization vs the query-fusion limit, for DLRM-RMC3, MT-WnD
 * and DIN (small variants, one inference thread on the V100).
 *
 * Reproduction targets: DLRM-RMC3 is data-loading-dominated (65-83% of
 * latency) with low GPU utilization (~25%); MT-WnD and DIN keep the
 * device busier (one-hot lookups / compute-heavy attention).
 */
#include "bench/bench_common.h"
#include "sim/measure.h"
#include "util/table.h"

using namespace hercules;

int
main()
{
    bench::banner("Figure 7",
                  "Latency breakdown vs fusion limit (1 GPU thread)");

    const hw::ServerSpec& server = hw::serverSpec(hw::ServerType::T7);
    sim::MeasureOptions mo = bench::benchSearchOptions().measure;

    for (model::ModelId id : {model::ModelId::DlrmRmc3,
                              model::ModelId::MtWnd, model::ModelId::Din}) {
        model::Model m = model::buildModel(id, model::Variant::Small);
        std::printf("-- %s --\n", model::modelName(id));
        TablePrinter t({"Fusion limit", "QPS @92% cap", "Queuing %",
                        "Loading %", "Inference %", "Load/(L+I)",
                        "GPU util"});
        double rmc3_loading = 0.0;
        for (int fusion : {0, 500, 1000, 2000, 4000, 6000}) {
            sched::SchedulingConfig cfg;
            cfg.mapping = sched::Mapping::GpuModelBased;
            cfg.gpu_threads = 1;
            cfg.fusion_limit = fusion;
            cfg.cpu_threads = 2;
            sim::PreparedWorkload w = sim::prepare(server, m, cfg);
            double cap = sim::saturationQps(w, mo.sim);
            sim::SimOptions probe = mo.sim;
            probe.offered_qps = 0.92 * cap;
            sim::ServerSimResult r = sim::simulateServer(w, probe);
            double total = r.mean_queue_ms + r.mean_host_ms +
                           r.mean_load_ms + r.mean_exec_ms;
            double queue_frac =
                total > 0 ? (r.mean_queue_ms + r.mean_host_ms) / total
                          : 0.0;
            double load_frac = total > 0 ? r.mean_load_ms / total : 0.0;
            double exec_frac = total > 0 ? r.mean_exec_ms / total : 0.0;
            double li = r.mean_load_ms + r.mean_exec_ms;
            double load_of_li = li > 0 ? r.mean_load_ms / li : 0.0;
            if (id == model::ModelId::DlrmRmc3)
                rmc3_loading = std::max(rmc3_loading, load_of_li);
            t.addRow({fusion == 0 ? "no fusion" : std::to_string(fusion),
                      fmtDouble(r.achieved_qps, 0),
                      fmtPercent(queue_frac, 1), fmtPercent(load_frac, 1),
                      fmtPercent(exec_frac, 1),
                      fmtPercent(load_of_li, 1),
                      fmtPercent(r.gpu_util, 1)});
        }
        t.print();
        if (id == model::ModelId::DlrmRmc3)
            std::printf("RMC3 max loading fraction: %.1f%% "
                        "(paper: 65-83%% of end-to-end latency)\n",
                        rmc3_loading * 100.0);
        std::printf("\n");
    }
    return 0;
}
