/**
 * @file
 * Fig 14 — SLA-aware task schedulers compared: the baseline
 * (DeepRecSys on the CPU, Baymax on the accelerator) vs Hercules, for
 * all six models on T2 (CPU), T3 (CPU+NMP), T7 (CPU+GPU) and T8
 * (CPU+NMP+GPU), across a sweep of SLA targets.
 *
 * Reproduction targets (who wins, roughly by how much): Hercules wins
 * everywhere (1.03x-9x). Sparse-heavy DLRMs gain ~1.3-2.7x on
 * CPU-centric servers (S-D pipelining + op-parallelism); compute-heavy
 * models gain up to ~6-9x on GPU servers (co-location + fusion).
 */
#include "bench/bench_common.h"
#include "sched/baselines.h"
#include "util/table.h"

using namespace hercules;

int
main()
{
    bench::banner("Figure 14",
                  "Baseline vs Hercules task scheduler, 6 models x 4 "
                  "server types x SLA sweep");

    sched::SearchOptions opt = bench::benchSearchOptions();
    const std::vector<hw::ServerType> servers = {
        hw::ServerType::T2, hw::ServerType::T3, hw::ServerType::T7,
        hw::ServerType::T8};
    const std::vector<double> sla_scale =
        bench::fastMode() ? std::vector<double>{1.0, 2.0}
                          : std::vector<double>{0.5, 1.0, 2.0, 4.0};

    for (model::ModelId mid : model::allModels()) {
        model::Model m = model::buildModel(mid);
        std::printf("-- %s (default SLA %.0f ms) --\n",
                    model::modelName(mid), m.sla_ms);
        TablePrinter t({"Server", "SLA (ms)", "Baseline QPS",
                        "Hercules QPS", "Speedup", "Hercules config"});
        for (hw::ServerType st : servers) {
            const hw::ServerSpec& server = hw::serverSpec(st);
            double lo = 1e18, hi = 0.0;
            for (double scale : sla_scale) {
                double sla = m.sla_ms * scale;
                sched::SearchResult base =
                    sched::baselineSearch(server, m, sla, opt);
                sched::SearchResult herc =
                    sched::herculesTaskSearch(server, m, sla, opt);
                double b = base.best ? base.best_qps : 0.0;
                double h = herc.best ? herc.best_qps : 0.0;
                double speedup = b > 0.0 ? h / b : 0.0;
                if (speedup > 0.0) {
                    lo = std::min(lo, speedup);
                    hi = std::max(hi, speedup);
                }
                t.addRow({hw::serverTypeName(st), fmtDouble(sla, 0),
                          fmtDouble(b, 0), fmtDouble(h, 0),
                          speedup > 0 ? fmtSpeedup(speedup) : "-",
                          herc.best ? herc.best->str() : "-"});
            }
            if (hi > 0.0)
                std::printf("  %s on %s: speedup range %.2fx - %.2fx\n",
                            model::modelName(mid), hw::serverTypeName(st),
                            lo, hi);
        }
        t.print();
        std::printf("\n");
    }

    std::printf("paper ranges (max over SLA sweep): RMC1 1.28-1.88x "
                "(T2/T3), RMC2 1.13-2.65x,\nRMC3 1.36-6.71x, MT-WnD up "
                "to 9.0x (T7), DIN up to 6.95x, DIEN up to 6.0x.\n");
    return 0;
}
