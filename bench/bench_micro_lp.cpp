/**
 * @file
 * google-benchmark microbenchmarks of the cluster-side machinery: the
 * simplex LP solver and the four provisioning policies at realistic
 * problem sizes (the online cluster manager runs these every
 * provisioning interval).
 */
#include <benchmark/benchmark.h>

#include "cluster/lp.h"
#include "cluster/provision.h"
#include "util/rng.h"

using namespace hercules;
using namespace hercules::cluster;

namespace {

LpProblem
randomLp(int vars, int constraints, uint64_t seed)
{
    Rng rng(seed);
    LpProblem p;
    p.c.resize(static_cast<size_t>(vars));
    for (auto& c : p.c)
        c = rng.uniform(1.0, 10.0);
    for (int i = 0; i < constraints; ++i) {
        std::vector<double> row(static_cast<size_t>(vars));
        for (auto& a : row)
            a = rng.uniform(0.0, 2.0);
        p.a.push_back(std::move(row));
        p.b.push_back(rng.uniform(5.0, 50.0));
    }
    // A few coverage (>=) rows keep phase 1 honest.
    for (int i = 0; i < constraints / 4 + 1; ++i) {
        std::vector<double> row(static_cast<size_t>(vars), 0.0);
        for (int j = 0; j < vars; ++j)
            row[static_cast<size_t>(j)] = -rng.uniform(0.5, 2.0);
        p.a.push_back(std::move(row));
        p.b.push_back(-rng.uniform(1.0, 10.0));
    }
    return p;
}

ProvisionProblem
randomProvisionProblem(int servers, int models, uint64_t seed)
{
    Rng rng(seed);
    std::vector<hw::ServerType> types;
    std::vector<int> avail;
    for (int h = 0; h < servers; ++h) {
        types.push_back(hw::allServerTypes()[static_cast<size_t>(h) %
                                             10]);
        avail.push_back(static_cast<int>(rng.uniformInt(5, 100)));
    }
    std::vector<model::ModelId> mids;
    for (int m = 0; m < models; ++m)
        mids.push_back(model::allModels()[static_cast<size_t>(m) % 6]);
    // ServerType values repeat; ProvisionProblem treats rows
    // positionally, so duplicates are fine for benchmarking.
    ProvisionProblem p(types, avail, mids);
    for (int h = 0; h < servers; ++h)
        for (int m = 0; m < models; ++m)
            p.setPerf(h, m, {true, rng.uniform(500.0, 5000.0),
                             rng.uniform(100.0, 400.0)});
    return p;
}

void
BM_SimplexSolve(benchmark::State& state)
{
    LpProblem p = randomLp(static_cast<int>(state.range(0)),
                           static_cast<int>(state.range(1)), 42);
    for (auto _ : state) {
        LpResult r = solveLp(p);
        benchmark::DoNotOptimize(r.objective);
    }
}
BENCHMARK(BM_SimplexSolve)
    ->Args({10, 5})
    ->Args({30, 10})
    ->Args({60, 16})
    ->Args({120, 20});

void
BM_HerculesProvision(benchmark::State& state)
{
    ProvisionProblem p = randomProvisionProblem(
        static_cast<int>(state.range(0)),
        static_cast<int>(state.range(1)), 7);
    std::vector<double> loads;
    for (int m = 0; m < p.numModels(); ++m)
        loads.push_back(0.3 * p.totalCapacity(m));
    HerculesProvisioner policy;
    for (auto _ : state) {
        Allocation a = policy.provision(p, loads, 0.05);
        benchmark::DoNotOptimize(a.activatedServers());
    }
}
BENCHMARK(BM_HerculesProvision)->Args({3, 2})->Args({10, 6})->Args({10,
                                                                    12});

void
BM_GreedyProvision(benchmark::State& state)
{
    ProvisionProblem p = randomProvisionProblem(10, 6, 7);
    std::vector<double> loads;
    for (int m = 0; m < p.numModels(); ++m)
        loads.push_back(0.3 * p.totalCapacity(m));
    GreedyProvisioner policy;
    for (auto _ : state) {
        Allocation a = policy.provision(p, loads, 0.05);
        benchmark::DoNotOptimize(a.activatedServers());
    }
}
BENCHMARK(BM_GreedyProvision);

void
BM_HotSplit(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc2);
    int64_t cap = m.embeddingBytes() / 4;
    for (auto _ : state) {
        model::HotSplit hs = model::computeHotSplit(m, cap);
        benchmark::DoNotOptimize(hs.hit_rate);
    }
}
BENCHMARK(BM_HotSplit);

}  // namespace

BENCHMARK_MAIN();
