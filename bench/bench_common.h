/**
 * @file
 * Shared setup for the paper-reproduction bench harnesses: search and
 * measurement options sized so the full suite finishes in minutes, a
 * fast mode for smoke runs (HERCULES_BENCH_FAST=1), and the cached
 * efficiency-table path that lets the cluster benches reuse the Fig 15
 * profiling results.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "core/eval_engine.h"
#include "sched/gradient_search.h"

namespace hercules::bench {

/**
 * @return the git SHA the benches were configured from (stamped by
 * CMake at configure time; "unknown" outside a git checkout).
 */
inline const char*
gitSha()
{
#ifdef HERCULES_GIT_SHA
    return HERCULES_GIT_SHA;
#else
    return "unknown";
#endif
}

/** @return the current UTC time as ISO-8601 (2026-01-31T12:34:56Z). */
inline std::string
isoTimestampUtc()
{
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/**
 * Write the provenance preamble every emitted BENCH_*.json starts
 * with, so the perf trajectory stays attributable across PRs. Call
 * right after the opening '{'.
 */
inline void
writeJsonProvenance(FILE* f)
{
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", gitSha());
    std::fprintf(f, "  \"generated_at\": \"%s\",\n",
                 isoTimestampUtc().c_str());
}

/** @return true when HERCULES_BENCH_FAST=1 (reduced sweep sizes). */
inline bool
fastMode()
{
    const char* env = std::getenv("HERCULES_BENCH_FAST");
    return env != nullptr && env[0] == '1';
}

/** Search/measure options used by all benches. */
inline sched::SearchOptions
benchSearchOptions()
{
    sched::SearchOptions opt;
    opt.measure.sim.num_queries = fastMode() ? 250 : 400;
    opt.measure.sim.warmup_queries = fastMode() ? 50 : 80;
    opt.measure.bisect_iters = fastMode() ? 4 : 5;
    opt.measure.sim.seed = 42;
    return opt;
}

/** Path of the efficiency-table cache written by bench_fig15. */
inline std::string
efficiencyCachePath()
{
    return "hercules_efficiency_prod.csv";
}

/**
 * Build one evaluation-engine request with the bench's measurement
 * options. Grid benches collect these and fan them out with
 * EvalEngine::evaluateMany instead of measuring serially.
 */
inline core::EvalRequest
evalRequest(const hw::ServerSpec& server, const model::Model& m,
            const sched::SchedulingConfig& cfg, double sla_ms,
            const sim::MeasureOptions& mo)
{
    core::EvalRequest r;
    r.server = &server;
    r.model = &m;
    r.cfg = cfg;
    r.sla_ms = sla_ms;
    r.measure = mo;
    return r;
}

/** Print the standard bench banner. */
inline void
banner(const char* experiment, const char* what)
{
    std::printf("==============================================================\n");
    std::printf("Hercules reproduction — %s\n", experiment);
    std::printf("%s\n", what);
    std::printf("==============================================================\n\n");
}

}  // namespace hercules::bench

#include <filesystem>
#include <optional>

#include "cluster/evolution.h"
#include "core/efficiency_table.h"
#include "sim/cluster_sim.h"

namespace hercules::bench {

/**
 * Emit the per-interval trajectory arrays every serving bench's JSON
 * carries (p99, SLA-violation rate, dropped arrivals, provisioned and
 * consumed power), comma-terminated except the last. Keeps the
 * BENCH_*.json schemas of the cluster benches in lockstep.
 */
inline void
writeIntervalArrays(FILE* f, const std::vector<sim::IntervalStats>& ivs)
{
    auto arr = [&](const char* key, auto get, int prec, bool last) {
        std::fprintf(f, "      \"%s\": [", key);
        for (size_t k = 0; k < ivs.size(); ++k)
            std::fprintf(f, "%s%.*f", k ? ", " : "", prec, get(ivs[k]));
        std::fprintf(f, "]%s\n", last ? "" : ",");
    };
    arr("interval_p99_ms",
        [](const sim::IntervalStats& iv) { return iv.p99_ms; }, 3,
        false);
    arr("interval_sla_violation_rate",
        [](const sim::IntervalStats& iv) {
            return iv.sla_violation_rate;
        },
        5, false);
    arr("interval_dropped",
        [](const sim::IntervalStats& iv) {
            return static_cast<double>(iv.dropped);
        },
        0, false);
    arr("interval_provisioned_power_w",
        [](const sim::IntervalStats& iv) {
            return iv.provisioned_power_w;
        },
        1, false);
    arr("interval_consumed_power_w",
        [](const sim::IntervalStats& iv) {
            return iv.consumed_power_w;
        },
        1, true);
}

/**
 * Load a cached efficiency table if the file exists and parses
 * (announcing reuse); a stale cache from an older build is announced
 * and ignored so the caller falls back to re-profiling.
 */
inline std::optional<core::EfficiencyTable>
tryLoadCachedTable(const std::string& path)
{
    if (!std::filesystem::exists(path))
        return std::nullopt;
    auto cached = core::EfficiencyTable::tryReadCsv(path);
    if (cached.has_value())
        std::printf("(reusing efficiency table from %s)\n\n",
                    path.c_str());
    else
        std::printf("(cache %s is stale: re-profiling)\n\n",
                    path.c_str());
    return cached;
}

/**
 * Scale each evolution service's peak load to a fraction of the
 * CPU-only (T1+T2) fleet capacity for its legacy model. The paper's
 * absolute 50K-QPS peaks are calibrated to its measured tuples; against
 * our simulated tuples the same fractions-of-fleet reproduce the
 * Fig 16 capacity-growth story without saturating the cluster on day
 * one. The default gives the three services together ~36% of the fleet
 * at the Day-D1 peak, leaving the headroom the paper's Day-D2 snapshot
 * consumes.
 */
inline void
scaleEvolutionServices(std::vector<cluster::EvolutionService>& services,
                       const core::EfficiencyTable& table,
                       double fleet_fraction = 0.12)
{
    for (auto& svc : services) {
        double capacity = 0.0;
        for (hw::ServerType st : {hw::ServerType::T1, hw::ServerType::T2}) {
            const core::EfficiencyEntry* e = table.get(st, svc.legacy);
            if (e && e->feasible)
                capacity += e->qps * hw::serverSpec(st).availability;
        }
        if (capacity > 0.0)
            svc.load.peak_qps = fleet_fraction * capacity;
    }
}

}  // namespace hercules::bench
