/**
 * @file
 * Shared setup for the paper-reproduction bench harnesses: search and
 * measurement options sized so the full suite finishes in minutes, a
 * fast mode for smoke runs (HERCULES_BENCH_FAST=1), and the cached
 * efficiency-table path that lets the cluster benches reuse the Fig 15
 * profiling results.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/eval_engine.h"
#include "sched/gradient_search.h"
#include "util/logging.h"

namespace hercules::bench {

/**
 * @return the git SHA the benches were configured from (stamped by
 * CMake at configure time; "unknown" outside a git checkout).
 */
inline const char*
gitSha()
{
#ifdef HERCULES_GIT_SHA
    return HERCULES_GIT_SHA;
#else
    return "unknown";
#endif
}

/** @return the current UTC time as ISO-8601 (2026-01-31T12:34:56Z). */
inline std::string
isoTimestampUtc()
{
    return isoUtcTimestamp();
}

/**
 * Write the provenance preamble every emitted BENCH_*.json starts
 * with, so the perf trajectory stays attributable across PRs. Call
 * right after the opening '{'.
 */
inline void
writeJsonProvenance(FILE* f)
{
    std::fprintf(f, "  \"git_sha\": \"%s\",\n", gitSha());
    std::fprintf(f, "  \"generated_at\": \"%s\",\n",
                 isoTimestampUtc().c_str());
}

/** @return true when HERCULES_BENCH_FAST=1 (reduced sweep sizes). */
inline bool
fastMode()
{
    const char* env = std::getenv("HERCULES_BENCH_FAST");
    return env != nullptr && env[0] == '1';
}

/** Search/measure options used by all benches. */
inline sched::SearchOptions
benchSearchOptions()
{
    sched::SearchOptions opt;
    opt.measure.sim.num_queries = fastMode() ? 250 : 400;
    opt.measure.sim.warmup_queries = fastMode() ? 50 : 80;
    opt.measure.bisect_iters = fastMode() ? 4 : 5;
    opt.measure.sim.seed = 42;
    return opt;
}

/** Path of the efficiency-table cache written by bench_fig15. */
inline std::string
efficiencyCachePath()
{
    return "hercules_efficiency_prod.csv";
}

/**
 * Build one evaluation-engine request with the bench's measurement
 * options. Grid benches collect these and fan them out with
 * EvalEngine::evaluateMany instead of measuring serially.
 */
inline core::EvalRequest
evalRequest(const hw::ServerSpec& server, const model::Model& m,
            const sched::SchedulingConfig& cfg, double sla_ms,
            const sim::MeasureOptions& mo)
{
    core::EvalRequest r;
    r.server = &server;
    r.model = &m;
    r.cfg = cfg;
    r.sla_ms = sla_ms;
    r.measure = mo;
    return r;
}

/** Print the standard bench banner. */
inline void
banner(const char* experiment, const char* what)
{
    std::printf("==============================================================\n");
    std::printf("Hercules reproduction — %s\n", experiment);
    std::printf("%s\n", what);
    std::printf("==============================================================\n\n");
}

}  // namespace hercules::bench

#include <filesystem>
#include <optional>

#include "cluster/evolution.h"
#include "core/efficiency_table.h"
#include "scenario/spec_io.h"
#include "sim/cluster_sim.h"

namespace hercules::bench {

/** The shipped scenario library (stamped by CMake). */
inline std::string
scenarioDir()
{
#ifdef HERCULES_SCENARIO_DIR
    return HERCULES_SCENARIO_DIR;
#else
    return "../scenarios";
#endif
}

/**
 * Load one shipped scenario file by name ("flash_crowd_surge.scn") —
 * the serving benches start from these specs and apply their deltas.
 * Parse failures are fatal: a bench must not silently diverge from
 * the spec it claims to run.
 */
inline scenario::ScenarioSpec
loadScenario(const std::string& file)
{
    std::string path = scenarioDir() + "/" + file;
    std::string err;
    auto spec = scenario::loadSpecFile(path, &err);
    if (!spec.has_value()) {
        std::fprintf(stderr, "bench: %s\n", err.c_str());
        std::exit(1);
    }
    return *spec;
}

/**
 * Emit the per-interval trajectory arrays every serving bench's JSON
 * carries, comma-terminated except the last — the shared
 * sim::writeIntervalArraysJson emitter at the benches' indent depth.
 */
inline void
writeIntervalArrays(FILE* f, const std::vector<sim::IntervalStats>& ivs)
{
    sim::writeIntervalArraysJson(f, ivs, "      ");
}

/**
 * Load a cached efficiency table if the file exists and parses
 * (announcing reuse); a stale cache from an older build is announced
 * and ignored so the caller falls back to re-profiling.
 */
inline std::optional<core::EfficiencyTable>
tryLoadCachedTable(const std::string& path)
{
    if (!std::filesystem::exists(path))
        return std::nullopt;
    auto cached = core::EfficiencyTable::tryReadCsv(path);
    if (cached.has_value())
        std::printf("(reusing efficiency table from %s)\n\n",
                    path.c_str());
    else
        std::printf("(cache %s is stale: re-profiling)\n\n",
                    path.c_str());
    return cached;
}

/**
 * Scale each evolution service's peak load to a fraction of the
 * CPU-only (T1+T2) fleet capacity for its legacy model. The paper's
 * absolute 50K-QPS peaks are calibrated to its measured tuples; against
 * our simulated tuples the same fractions-of-fleet reproduce the
 * Fig 16 capacity-growth story without saturating the cluster on day
 * one. The default gives the three services together ~36% of the fleet
 * at the Day-D1 peak, leaving the headroom the paper's Day-D2 snapshot
 * consumes.
 */
inline void
scaleEvolutionServices(std::vector<cluster::EvolutionService>& services,
                       const core::EfficiencyTable& table,
                       double fleet_fraction = 0.12)
{
    for (auto& svc : services) {
        double capacity = 0.0;
        for (hw::ServerType st : {hw::ServerType::T1, hw::ServerType::T2}) {
            const core::EfficiencyEntry* e = table.get(st, svc.legacy);
            if (e && e->feasible)
                capacity += e->qps * hw::serverSpec(st).availability;
        }
        if (capacity > 0.0)
            svc.load.peak_qps = fleet_fraction * capacity;
    }
}

}  // namespace hercules::bench
