/**
 * @file
 * Fig 17 — the three cluster schedulers on the accelerated Day-D2
 * cluster (20% of traffic on the successor models; accelerated servers
 * T3-T10 with Table II availabilities):
 * heterogeneity-oblivious (NH), greedy [8,9], and Hercules (Eq. 1-3).
 *
 * Reproduction targets: greedy saves 75.8% (peak) / 67.4% (avg)
 * capacity and 50.8% / 42.7% power over NH; Hercules saves a further
 * 47.7% / 22.8% capacity and 23.7% / 9.1% power over greedy.
 */

#include "bench/bench_common.h"
#include "cluster/evolution.h"
#include "core/profiler.h"
#include "util/table.h"

using namespace hercules;

namespace {

core::EfficiencyTable
loadOrProfile()
{
    if (auto cached =
            bench::tryLoadCachedTable(bench::efficiencyCachePath()))
        return *cached;
    std::printf("(profiling the full catalog — run "
                "bench_fig15_server_arch first to avoid this)\n\n");
    core::ProfilerOptions popt;
    popt.search = bench::benchSearchOptions();
    core::EfficiencyTable t = core::offlineProfile(popt);
    t.writeCsv(bench::efficiencyCachePath());
    return t;
}

}  // namespace

int
main()
{
    bench::banner("Figure 17",
                  "NH vs greedy vs Hercules cluster scheduling "
                  "(Day-D2, accelerated cluster)");

    core::EfficiencyTable table = loadOrProfile();
    auto services = cluster::defaultEvolutionServices();
    // Size the service peaks against the simulated fleet (see
    // bench_common.h) so Day-D1 fits the CPU-only cluster comfortably.
    bench::scaleEvolutionServices(services, table);
    auto workloads = cluster::evolutionWorkloads(services, 0.2);
    auto models = cluster::evolutionModels(services, 0.2);
    auto problem = cluster::ProvisionProblem::fromTable(
        table, hw::allServerTypes(), models);

    cluster::ClusterManagerOptions copt;
    cluster::NhProvisioner nh(11);
    cluster::GreedyProvisioner greedy;
    cluster::HerculesProvisioner hercules;

    auto rn = cluster::runCluster(problem, workloads, nh, copt);
    auto rg = cluster::runCluster(problem, workloads, greedy, copt);
    auto rh = cluster::runCluster(problem, workloads, hercules, copt);

    std::printf("-- hourly capacity and provisioned power --\n");
    TablePrinter t({"Hour", "NH srv", "NH kW", "Greedy srv", "Greedy kW",
                    "Hercules srv", "Hercules kW"});
    for (size_t i = 0; i < rn.intervals.size(); i += 2) {
        t.addRow({fmtDouble(rn.intervals[i].t_hours, 1),
                  std::to_string(rn.intervals[i].activated_servers),
                  fmtDouble(rn.intervals[i].provisioned_power_w / 1e3, 1),
                  std::to_string(rg.intervals[i].activated_servers),
                  fmtDouble(rg.intervals[i].provisioned_power_w / 1e3, 1),
                  std::to_string(rh.intervals[i].activated_servers),
                  fmtDouble(rh.intervals[i].provisioned_power_w / 1e3,
                            1)});
    }
    t.print();

    auto saving = [](double better, double worse) {
        return worse > 0 ? (1.0 - better / worse) : 0.0;
    };
    std::printf("\n-- savings --\n");
    TablePrinter s({"Comparison", "Capacity peak", "Capacity avg",
                    "Power peak", "Power avg", "Paper (peak)"});
    s.addRow({"Greedy vs NH",
              fmtPercent(saving(rg.peak_servers, rn.peak_servers), 1),
              fmtPercent(saving(rg.avg_servers, rn.avg_servers), 1),
              fmtPercent(saving(rg.peak_power_w, rn.peak_power_w), 1),
              fmtPercent(saving(rg.avg_power_w, rn.avg_power_w), 1),
              "75.8% cap / 50.8% pow"});
    s.addRow({"Hercules vs Greedy",
              fmtPercent(saving(rh.peak_servers, rg.peak_servers), 1),
              fmtPercent(saving(rh.avg_servers, rg.avg_servers), 1),
              fmtPercent(saving(rh.peak_power_w, rg.peak_power_w), 1),
              fmtPercent(saving(rh.avg_power_w, rg.avg_power_w), 1),
              "47.7% cap / 23.7% pow"});
    s.print();
    return 0;
}
