/**
 * @file
 * Ablations of the design choices DESIGN.md calls out: what each
 * Hercules mechanism is worth on its own, measured as latency-bounded
 * QPS with everything else held fixed.
 *
 *  1. elementwise operator fusion (on/off) — dispatch-overhead saving;
 *  2. S-D pipeline vs model-based scheduling at equal core budget —
 *     the value of separating the dependency-free SparseNet;
 *  3. op-parallelism (cores per thread) at a fixed core budget — the
 *     Psp(O) dimension the baselines never search;
 *  4. query fusion vs model co-location on the accelerator — which
 *     lever does the heavy lifting in Fig 6;
 *  5. NMP offload — the same configuration on DDR4 vs NMPx2 memory.
 */
#include "bench/bench_common.h"
#include "sim/measure.h"
#include "util/table.h"

using namespace hercules;

namespace {

/** Shared engine: ablation cells repeating a config are memo hits. */
core::EvalEngine&
ablationEngine()
{
    static core::EvalEngine engine;
    return engine;
}

double
qpsOf(const hw::ServerSpec& server, const model::Model& m,
      const sched::SchedulingConfig& cfg, double sla_ms)
{
    sim::MeasureOptions mo = bench::benchSearchOptions().measure;
    core::EvalResult res = ablationEngine().evaluate(
        bench::evalRequest(server, m, cfg, sla_ms, mo));
    return res.valid && res.point ? res.point->qps : -1.0;
}

std::string
cell(double v)
{
    return v >= 0 ? fmtDouble(v, 0) : std::string("viol.");
}

}  // namespace

int
main()
{
    bench::banner("Ablations",
                  "Per-mechanism value of the Hercules design choices");

    const hw::ServerSpec& t2 = hw::serverSpec(hw::ServerType::T2);
    const hw::ServerSpec& t3 = hw::serverSpec(hw::ServerType::T3);
    const hw::ServerSpec& t7 = hw::serverSpec(hw::ServerType::T7);

    // ---- 1. elementwise fusion ---------------------------------------
    std::printf("-- 1. elementwise operator fusion (cpu-model 10x2 "
                "b128) --\n");
    TablePrinter t1({"Model", "fused QPS", "unfused QPS", "gain"});
    for (model::ModelId mid :
         {model::ModelId::DlrmRmc1, model::ModelId::DlrmRmc3}) {
        model::Model m = model::buildModel(mid);
        sched::SchedulingConfig cfg;
        cfg.mapping = sched::Mapping::CpuModelBased;
        cfg.cpu_threads = 10;
        cfg.cores_per_thread = 2;
        cfg.batch = 128;
        cfg.fuse_elementwise = true;
        double fused = qpsOf(t2, m, cfg, m.sla_ms);
        cfg.fuse_elementwise = false;
        double raw = qpsOf(t2, m, cfg, m.sla_ms);
        t1.addRow({model::modelName(mid), cell(fused), cell(raw),
                   raw > 0 ? fmtSpeedup(fused / raw) : "-"});
    }
    t1.print();

    // ---- 2. S-D pipeline vs model-based at 20 cores --------------------
    std::printf("\n-- 2. S-D pipeline vs model-based (DLRM models, "
                "20 cores, b128) --\n");
    TablePrinter t2t({"Model", "model-based 10x2", "S-D 6x2::8", "gain"});
    for (model::ModelId mid : {model::ModelId::DlrmRmc1,
                               model::ModelId::DlrmRmc2,
                               model::ModelId::DlrmRmc3}) {
        model::Model m = model::buildModel(mid);
        sched::SchedulingConfig mb;
        mb.mapping = sched::Mapping::CpuModelBased;
        mb.cpu_threads = 10;
        mb.cores_per_thread = 2;
        mb.batch = 128;
        sched::SchedulingConfig sd;
        sd.mapping = sched::Mapping::CpuSdPipeline;
        sd.cpu_threads = 6;
        sd.cores_per_thread = 2;
        sd.dense_threads = 8;
        sd.batch = 128;
        double a = qpsOf(t2, m, mb, m.sla_ms);
        double b = qpsOf(t2, m, sd, m.sla_ms);
        t2t.addRow({model::modelName(mid), cell(a), cell(b),
                    a > 0 && b > 0 ? fmtSpeedup(b / a) : "-"});
    }
    t2t.print();

    // ---- 3. op-parallelism at a fixed 20-core budget --------------------
    std::printf("\n-- 3. op-parallelism Psp(O) at 20 cores (DLRM-RMC1, "
                "b128) --\n");
    TablePrinter t3t({"Allocation", "QPS"});
    model::Model rmc1 = model::buildModel(model::ModelId::DlrmRmc1);
    for (int o : {1, 2, 4}) {
        sched::SchedulingConfig cfg;
        cfg.mapping = sched::Mapping::CpuModelBased;
        cfg.cpu_threads = 20 / o;
        cfg.cores_per_thread = o;
        cfg.batch = 128;
        t3t.addRow({std::to_string(cfg.cpu_threads) + "x" +
                        std::to_string(o),
                    cell(qpsOf(t2, rmc1, cfg, rmc1.sla_ms))});
    }
    t3t.print();

    // ---- 4. co-location vs fusion on the V100 --------------------------
    std::printf("\n-- 4. accelerator levers (DLRM-RMC3 small, "
                "SLA 50 ms) --\n");
    model::Model rmc3 =
        model::buildModel(model::ModelId::DlrmRmc3, model::Variant::Small);
    TablePrinter t4({"Config", "QPS"});
    struct Lever
    {
        const char* name;
        int g;
        int fusion;
    };
    for (const Lever& lv :
         {Lever{"neither (g1, none)", 1, 0},
          Lever{"co-location only (g4)", 4, 0},
          Lever{"fusion only (g1 f4000)", 1, 4000},
          Lever{"both (g2 f4000)", 2, 4000}}) {
        sched::SchedulingConfig cfg;
        cfg.mapping = sched::Mapping::GpuModelBased;
        cfg.gpu_threads = lv.g;
        cfg.fusion_limit = lv.fusion;
        cfg.cpu_threads = 2;
        t4.addRow({lv.name, cell(qpsOf(t7, rmc3, cfg, 50.0))});
    }
    t4.print();

    // ---- 5. NMP offload --------------------------------------------------
    std::printf("\n-- 5. NMP offload: identical schedule on DDR4 vs "
                "NMPx2 (b32 keeps every model's\n   batch service time "
                "inside its SLA on plain DDR4) --\n");
    TablePrinter t5({"Model", "T2 (DDR4) QPS", "T3 (NMPx2) QPS", "gain"});
    for (model::ModelId mid :
         {model::ModelId::DlrmRmc1, model::ModelId::DlrmRmc2,
          model::ModelId::MtWnd}) {
        model::Model m = model::buildModel(mid);
        sched::SchedulingConfig cfg;
        cfg.mapping = sched::Mapping::CpuModelBased;
        cfg.cpu_threads = 10;
        cfg.cores_per_thread = 2;
        cfg.batch = 32;
        double ddr = qpsOf(t2, m, cfg, m.sla_ms);
        double nmp = qpsOf(t3, m, cfg, m.sla_ms);
        t5.addRow({model::modelName(mid), cell(ddr), cell(nmp),
                   ddr > 0 && nmp > 0 ? fmtSpeedup(nmp / ddr) : "-"});
    }
    t5.print();
    std::printf("\n(one-hot MT-WnD shows no NMP gain — the offload only "
                "accelerates Gather-Reduce)\n");
    return 0;
}
