/**
 * @file
 * Table I — state-of-the-art production-scale recommendation model
 * configurations, as instantiated by the model zoo.
 */
#include "bench/bench_common.h"
#include "model/footprint.h"
#include "util/table.h"

using namespace hercules;

int
main()
{
    bench::banner("Table I",
                  "Production-scale recommendation model configurations");

    TablePrinter t({"Model", "Service", "#Embs", "Rows (min-max)",
                    "Lookups/item", "Pooling", "Emb GB (prod)",
                    "Emb GB (small)", "Dense MB", "SLA (ms)"});
    for (model::ModelId id : model::allModels()) {
        model::Model prod = model::buildModel(id, model::Variant::Prod);
        model::Model small = model::buildModel(id, model::Variant::Small);
        // Lookup counts vary per table (DIN/DIEN mix one-hot candidate
        // lookups with 100-1000-element behaviour gathers).
        double pool_lo = 1e18, pool_hi = 0.0;
        for (const auto& n : prod.graph.nodes()) {
            if (n.kind() != model::OpKind::EmbeddingLookup)
                continue;
            const auto& p = std::get<model::EmbeddingParams>(n.params);
            pool_lo = std::min(pool_lo, p.pooling_min);
            pool_hi = std::max(pool_hi, p.pooling_max);
        }
        t.addRow({
            model::modelName(id),
            model::modelService(id),
            std::to_string(prod.num_tables),
            fmtEng(static_cast<double>(prod.rows_min), 1) + " - " +
                fmtEng(static_cast<double>(prod.rows_max), 1),
            fmtDouble(pool_lo, 0) + " - " + fmtDouble(pool_hi, 0),
            prod.pooled ? "Yes" : "No",
            fmtDouble(static_cast<double>(prod.embeddingBytes()) /
                          (1ll << 30), 1),
            fmtDouble(static_cast<double>(small.embeddingBytes()) /
                          (1ll << 30), 1),
            fmtDouble(static_cast<double>(prod.denseParamBytes()) /
                          (1 << 20), 1),
            fmtDouble(prod.sla_ms, 0),
        });
    }
    t.print();

    std::printf("\nNotes: rows capped for MT-WnD (20M) and DIN/DIEN "
                "(300M) vs Table I so production\nvariants fit the 64 GB "
                "T1 host — see DESIGN.md 'Substitutions'.\n");
    return 0;
}
