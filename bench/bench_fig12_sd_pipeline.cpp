/**
 * @file
 * Fig 12 — balancing the sparse-dense pipeline:
 *  (a) CPU: throughput vs the SparseNet/DenseNet thread split — rises
 *      while parallelism grows, falls once the pipeline unbalances;
 *  (b) CPU+GPU: host-side SparseNet search with the accelerator-side
 *      (co-location x fusion) search after each host move.
 */
#include "bench/bench_common.h"
#include "sched/gradient_search.h"
#include "sim/measure.h"
#include "util/table.h"

using namespace hercules;

int
main()
{
    bench::banner("Figure 12", "S-D pipeline balancing (DLRM-RMC1)");

    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    const hw::ServerSpec& t2 = hw::serverSpec(hw::ServerType::T2);
    sim::MeasureOptions mo = bench::benchSearchOptions().measure;
    core::EvalEngine engine;

    // ---- (a) CPU: sweep the sparse/dense split ------------------------
    std::printf("-- Fig 12(a): CPU S-D split (batch 128, SLA 20 ms) --\n");
    std::vector<core::EvalRequest> split_reqs;
    for (int o : {1, 2}) {
        for (int s = 1; s * o + 1 <= t2.cpu.cores; ++s) {
            int d = sched::balancedDenseThreads(t2, m, s, o, 128);
            if (d < 1)
                continue;
            sched::SchedulingConfig cfg;
            cfg.mapping = sched::Mapping::CpuSdPipeline;
            cfg.cpu_threads = s;
            cfg.cores_per_thread = o;
            cfg.dense_threads = d;
            cfg.batch = 128;
            split_reqs.push_back(
                bench::evalRequest(t2, m, cfg, 20.0, mo));
        }
    }
    std::vector<core::EvalResult> split_results =
        engine.evaluateMany(split_reqs);
    TablePrinter ta({"Config (SxO::D)", "QPS", "Tail (ms)"});
    for (size_t i = 0; i < split_reqs.size(); ++i) {
        const sched::SchedulingConfig& cfg = split_reqs[i].cfg;
        const auto& point = split_results[i].point;
        ta.addRow({std::to_string(cfg.cpu_threads) + "x" +
                       std::to_string(cfg.cores_per_thread) +
                       "::" + std::to_string(cfg.dense_threads),
                   point ? fmtDouble(point->qps, 0) : "viol.",
                   point ? fmtDouble(point->result.tail_ms, 1) : "-"});
    }
    ta.print();
    std::printf("shape: throughput climbs with more parallel tasks, then "
                "falls when the\npipeline unbalances or the cores run "
                "out (paper Fig 12(a)).\n\n");

    // ---- (b) CPU-GPU: host sweep with nested accelerator search -------
    const hw::ServerSpec& t7 = hw::serverSpec(hw::ServerType::T7);
    std::printf("-- Fig 12(b): CPU-side SparseNet -> GPU DenseNet "
                "(SLA 20 ms) --\n");
    TablePrinter tb({"Host threads x cores", "Best GPU side", "QPS"});
    sched::SearchOptions opt = bench::benchSearchOptions();
    for (int s : {2, 4, 6, 8, 10, 14, 18}) {
        // All nine accelerator-side candidates of one host split are
        // independent: fan them out, reduce in request order.
        std::vector<core::EvalRequest> reqs;
        for (int g : {1, 2, 4}) {
            for (int f : {0, 1000, 4000}) {
                sched::SchedulingConfig cfg;
                cfg.mapping = sched::Mapping::GpuSdPipeline;
                cfg.cpu_threads = s;
                cfg.cores_per_thread = 1;
                cfg.batch = 128;
                cfg.gpu_threads = g;
                cfg.fusion_limit = f;
                reqs.push_back(bench::evalRequest(t7, m, cfg, 20.0, mo));
            }
        }
        std::vector<core::EvalResult> results = engine.evaluateMany(reqs);
        double best_qps = -1.0;
        std::string best_gpu = "-";
        for (size_t i = 0; i < reqs.size(); ++i) {
            const core::EvalResult& res = results[i];
            if (res.valid && res.point && res.point->qps > best_qps) {
                best_qps = res.point->qps;
                best_gpu =
                    "g" + std::to_string(reqs[i].cfg.gpu_threads) +
                    " f" + std::to_string(reqs[i].cfg.fusion_limit);
            }
        }
        tb.addRow({std::to_string(s) + "x1", best_gpu,
                   best_qps >= 0 ? fmtDouble(best_qps, 0) : "viol."});
    }
    tb.print();

    // The full nested gradient search for reference.
    sched::SearchResult r = sched::gradientSearchMapping(
        t7, m, sched::Mapping::GpuSdPipeline, 20.0, opt);
    if (r.best)
        std::printf("\ngradient search optimum: %s at %.0f QPS "
                    "(%d evals)\n",
                    r.best->str().c_str(), r.best_qps, r.evals);
    return 0;
}
