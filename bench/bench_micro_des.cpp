/**
 * @file
 * google-benchmark microbenchmarks of the serving simulator: one DES
 * run per mapping, a latency-bounded measurement, one gradient-search
 * step cost, and the NMP LUT pre-simulation — the building blocks whose
 * cost bounds offline-profiling time.
 */
#include <benchmark/benchmark.h>

#include "hw/nmp.h"
#include "sched/gradient_search.h"
#include "sim/measure.h"

using namespace hercules;

namespace {

sim::SimOptions
probeOptions()
{
    sim::SimOptions opt;
    opt.num_queries = 400;
    opt.warmup_queries = 80;
    opt.offered_qps = 800.0;
    return opt;
}

void
BM_DesCpuModelBased(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = 10;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T2), m, cfg);
    sim::SimOptions opt = probeOptions();
    for (auto _ : state) {
        sim::ServerSimResult r = sim::simulateServer(w, opt);
        benchmark::DoNotOptimize(r.p95_ms);
    }
}
BENCHMARK(BM_DesCpuModelBased);

void
BM_DesCpuSdPipeline(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuSdPipeline;
    cfg.cpu_threads = 6;
    cfg.cores_per_thread = 2;
    cfg.dense_threads = 4;
    cfg.batch = 128;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T2), m, cfg);
    sim::SimOptions opt = probeOptions();
    for (auto _ : state) {
        sim::ServerSimResult r = sim::simulateServer(w, opt);
        benchmark::DoNotOptimize(r.p95_ms);
    }
}
BENCHMARK(BM_DesCpuSdPipeline);

void
BM_DesGpuFusion(benchmark::State& state)
{
    model::Model m =
        model::buildModel(model::ModelId::DlrmRmc3, model::Variant::Small);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::GpuModelBased;
    cfg.gpu_threads = 2;
    cfg.fusion_limit = static_cast<int>(state.range(0));
    cfg.cpu_threads = 2;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T7), m, cfg);
    sim::SimOptions opt = probeOptions();
    opt.offered_qps = 2000.0;
    for (auto _ : state) {
        sim::ServerSimResult r = sim::simulateServer(w, opt);
        benchmark::DoNotOptimize(r.p95_ms);
    }
}
BENCHMARK(BM_DesGpuFusion)->Arg(0)->Arg(2000)->Arg(6000);

void
BM_MeasureLatencyBounded(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = 10;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T2), m, cfg);
    sim::MeasureOptions mo;
    mo.sim = probeOptions();
    mo.bisect_iters = 5;
    for (auto _ : state) {
        auto point = sim::measureLatencyBoundedQps(w, 20.0, mo);
        benchmark::DoNotOptimize(point.has_value());
    }
}
BENCHMARK(BM_MeasureLatencyBounded);

void
BM_GradientSearchCpu(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SearchOptions opt;
    opt.measure.sim = probeOptions();
    opt.measure.bisect_iters = 4;
    for (auto _ : state) {
        sched::SearchResult r = sched::gradientSearchMapping(
            hw::serverSpec(hw::ServerType::T2), m,
            sched::Mapping::CpuModelBased, 20.0, opt);
        benchmark::DoNotOptimize(r.best_qps);
    }
}
BENCHMARK(BM_GradientSearchCpu)->Unit(benchmark::kMillisecond);

void
BM_NmpLutBuild(benchmark::State& state)
{
    hw::MemSpec mem = hw::nmpX(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        hw::NmpLut lut(mem, 32);
        benchmark::DoNotOptimize(lut.lookup(256, 80).latency_us);
    }
}
BENCHMARK(BM_NmpLutBuild)->Arg(2)->Arg(8);

void
BM_CpuGraphTiming(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc2);
    hw::CostModel cost(hw::serverSpec(hw::ServerType::T2));
    hw::CpuExecContext cx;
    cx.workers = 2;
    cx.mem_bw_gbps = 5.0;
    for (auto _ : state) {
        hw::GraphTiming t = cost.cpuGraphTiming(m.graph, 256, cx);
        benchmark::DoNotOptimize(t.latency_us);
    }
}
BENCHMARK(BM_CpuGraphTiming);

}  // namespace

BENCHMARK_MAIN();
