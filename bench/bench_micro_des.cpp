/**
 * @file
 * google-benchmark microbenchmarks of the serving simulator: one DES
 * run per mapping, a latency-bounded measurement, one gradient-search
 * step cost, and the NMP LUT pre-simulation — the building blocks whose
 * cost bounds offline-profiling time. The custom main additionally runs
 * a DES self-profiling probe and emits BENCH_micro_des.json with the
 * raw engine throughput (events executed, events/sec, peak event-queue
 * depth) so the event-engine trajectory is tracked across PRs.
 */
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "hw/nmp.h"
#include "obs/self_profile.h"
#include "sched/gradient_search.h"
#include "sim/measure.h"

using namespace hercules;

namespace {

sim::SimOptions
probeOptions()
{
    sim::SimOptions opt;
    opt.num_queries = 400;
    opt.warmup_queries = 80;
    opt.offered_qps = 800.0;
    return opt;
}

void
BM_DesCpuModelBased(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = 10;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T2), m, cfg);
    sim::SimOptions opt = probeOptions();
    for (auto _ : state) {
        sim::ServerSimResult r = sim::simulateServer(w, opt);
        benchmark::DoNotOptimize(r.p95_ms);
    }
}
BENCHMARK(BM_DesCpuModelBased);

void
BM_DesCpuSdPipeline(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuSdPipeline;
    cfg.cpu_threads = 6;
    cfg.cores_per_thread = 2;
    cfg.dense_threads = 4;
    cfg.batch = 128;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T2), m, cfg);
    sim::SimOptions opt = probeOptions();
    for (auto _ : state) {
        sim::ServerSimResult r = sim::simulateServer(w, opt);
        benchmark::DoNotOptimize(r.p95_ms);
    }
}
BENCHMARK(BM_DesCpuSdPipeline);

void
BM_DesGpuFusion(benchmark::State& state)
{
    model::Model m =
        model::buildModel(model::ModelId::DlrmRmc3, model::Variant::Small);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::GpuModelBased;
    cfg.gpu_threads = 2;
    cfg.fusion_limit = static_cast<int>(state.range(0));
    cfg.cpu_threads = 2;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T7), m, cfg);
    sim::SimOptions opt = probeOptions();
    opt.offered_qps = 2000.0;
    for (auto _ : state) {
        sim::ServerSimResult r = sim::simulateServer(w, opt);
        benchmark::DoNotOptimize(r.p95_ms);
    }
}
BENCHMARK(BM_DesGpuFusion)->Arg(0)->Arg(2000)->Arg(6000);

void
BM_MeasureLatencyBounded(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SchedulingConfig cfg;
    cfg.mapping = sched::Mapping::CpuModelBased;
    cfg.cpu_threads = 10;
    cfg.cores_per_thread = 2;
    cfg.batch = 128;
    sim::PreparedWorkload w =
        sim::prepare(hw::serverSpec(hw::ServerType::T2), m, cfg);
    sim::MeasureOptions mo;
    mo.sim = probeOptions();
    mo.bisect_iters = 5;
    for (auto _ : state) {
        auto point = sim::measureLatencyBoundedQps(w, 20.0, mo);
        benchmark::DoNotOptimize(point.has_value());
    }
}
BENCHMARK(BM_MeasureLatencyBounded);

void
BM_GradientSearchCpu(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    sched::SearchOptions opt;
    opt.measure.sim = probeOptions();
    opt.measure.bisect_iters = 4;
    for (auto _ : state) {
        sched::SearchResult r = sched::gradientSearchMapping(
            hw::serverSpec(hw::ServerType::T2), m,
            sched::Mapping::CpuModelBased, 20.0, opt);
        benchmark::DoNotOptimize(r.best_qps);
    }
}
BENCHMARK(BM_GradientSearchCpu)->Unit(benchmark::kMillisecond);

void
BM_NmpLutBuild(benchmark::State& state)
{
    hw::MemSpec mem = hw::nmpX(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        hw::NmpLut lut(mem, 32);
        benchmark::DoNotOptimize(lut.lookup(256, 80).latency_us);
    }
}
BENCHMARK(BM_NmpLutBuild)->Arg(2)->Arg(8);

void
BM_CpuGraphTiming(benchmark::State& state)
{
    model::Model m = model::buildModel(model::ModelId::DlrmRmc2);
    hw::CostModel cost(hw::serverSpec(hw::ServerType::T2));
    hw::CpuExecContext cx;
    cx.workers = 2;
    cx.mem_bw_gbps = 5.0;
    for (auto _ : state) {
        hw::GraphTiming t = cost.cpuGraphTiming(m.graph, 256, cx);
        benchmark::DoNotOptimize(t.latency_us);
    }
}
BENCHMARK(BM_CpuGraphTiming);

/**
 * DES self-profiling probe: one long simulateServer run per mapping,
 * timed end to end. Events/sec here is raw event-engine throughput —
 * the number the ROADMAP gates the DES trajectory on.
 */
struct DesProbe
{
    const char* name;
    uint64_t events_executed;
    size_t peak_event_queue_depth;
    double wall_ms;
    double events_per_sec;
};

DesProbe
runDesProbe(const char* name, sched::Mapping mapping, hw::ServerType st,
            model::ModelId model, double offered_qps)
{
    // The GPU probe mirrors BM_DesGpuFusion's Small-variant setup so it
    // fits T7 device memory.
    model::Model m = model::buildModel(
        model, mapping == sched::Mapping::GpuModelBased
                   ? model::Variant::Small
                   : model::Variant::Prod);
    sched::SchedulingConfig cfg;
    cfg.mapping = mapping;
    if (mapping == sched::Mapping::GpuModelBased) {
        cfg.gpu_threads = 2;
        cfg.cpu_threads = 2;
    } else {
        cfg.cpu_threads = 10;
        cfg.cores_per_thread = 2;
        cfg.batch = 128;
    }
    sim::PreparedWorkload w = sim::prepare(hw::serverSpec(st), m, cfg);
    sim::SimOptions opt;
    opt.num_queries = bench::fastMode() ? 2000 : 20000;
    opt.warmup_queries = opt.num_queries / 10;
    opt.offered_qps = offered_qps;

    obs::WallTimer timer;
    sim::ServerSimResult r = sim::simulateServer(w, opt);
    double wall_ms = timer.elapsedMs();

    DesProbe p;
    p.name = name;
    p.events_executed = r.events_executed;
    p.peak_event_queue_depth = r.peak_event_queue_depth;
    p.wall_ms = wall_ms;
    p.events_per_sec =
        wall_ms > 0.0 ? static_cast<double>(r.events_executed) /
                            (wall_ms * 1e-3)
                      : 0.0;
    return p;
}

void
writeDesProbeJson(const std::vector<DesProbe>& probes)
{
    const char* path = "BENCH_micro_des.json";
    FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "bench: cannot open %s\n", path);
        return;
    }
    std::fprintf(f, "{\n");
    bench::writeJsonProvenance(f);
    std::fprintf(f, "  \"experiment\": \"micro_des\",\n");
    std::fprintf(f, "  \"probes\": [\n");
    for (size_t i = 0; i < probes.size(); ++i) {
        const DesProbe& p = probes[i];
        std::fprintf(f, "    {\n");
        std::fprintf(f, "      \"name\": \"%s\",\n", p.name);
        std::fprintf(f, "      \"events_executed\": %llu,\n",
                     static_cast<unsigned long long>(p.events_executed));
        std::fprintf(f, "      \"peak_event_queue_depth\": %zu,\n",
                     p.peak_event_queue_depth);
        std::fprintf(f, "      \"wall_ms\": %.3f,\n", p.wall_ms);
        std::fprintf(f, "      \"events_per_sec\": %.0f\n",
                     p.events_per_sec);
        std::fprintf(f, "    }%s\n", i + 1 < probes.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", path);
}

}  // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    std::vector<DesProbe> probes;
    probes.push_back(runDesProbe("des_cpu_model_based",
                                 sched::Mapping::CpuModelBased,
                                 hw::ServerType::T2,
                                 model::ModelId::DlrmRmc1, 800.0));
    probes.push_back(runDesProbe("des_gpu_model_based",
                                 sched::Mapping::GpuModelBased,
                                 hw::ServerType::T7,
                                 model::ModelId::DlrmRmc3, 2000.0));
    for (const DesProbe& p : probes)
        std::printf("%-22s %10llu events  peak depth %6zu  "
                    "%8.1f ms  %.0f events/s\n",
                    p.name,
                    static_cast<unsigned long long>(p.events_executed),
                    p.peak_event_queue_depth, p.wall_ms,
                    p.events_per_sec);
    writeDesProbeJson(probes);
    return 0;
}
