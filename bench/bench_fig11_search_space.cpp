/**
 * @file
 * Fig 11 — the model-based scheduling space of DLRM-RMC1 on (a-c) the
 * CPU and (d-f) the accelerator: latency-bounded throughput,
 * tail-latency and peak power over the (model-parallelism x
 * data-parallelism) grid, plus the gradient-search path.
 *
 * Reproduction target (shape): throughput over Psp(M + D) is convex —
 * it rises with threads/batch, then falls (interference, SLA
 * violations); the gradient search path walks monotonically to the
 * peak and terminates there.
 */
#include "bench/bench_common.h"
#include "sched/gradient_search.h"
#include "sim/measure.h"
#include "util/table.h"

using namespace hercules;

namespace {

void
cpuGrid(core::EvalEngine& engine, const hw::ServerSpec& server,
        const model::Model& m, double sla_ms)
{
    sim::MeasureOptions mo = bench::benchSearchOptions().measure;
    const std::vector<int> threads = {1, 2, 4, 6, 8, 10, 14, 20};
    const std::vector<int> batches = {16, 64, 256, 1024};

    for (int o : {1, 2}) {
        std::printf("-- CPU Psp(M+D), %d core(s) per thread "
                    "(SLA %.0f ms): QPS [tail ms] --\n",
                    o, sla_ms);
        std::vector<std::string> header = {"threads \\ batch"};
        for (int b : batches)
            header.push_back(std::to_string(b));

        // The whole grid fans onto the engine pool; rows are then
        // printed from the ordered result vector.
        std::vector<core::EvalRequest> reqs;
        std::vector<int> row_threads;
        for (int th : threads) {
            if (th * o > server.cpu.cores)
                continue;
            row_threads.push_back(th);
            for (int b : batches) {
                sched::SchedulingConfig cfg;
                cfg.mapping = sched::Mapping::CpuModelBased;
                cfg.cpu_threads = th;
                cfg.cores_per_thread = o;
                cfg.batch = b;
                reqs.push_back(
                    bench::evalRequest(server, m, cfg, sla_ms, mo));
            }
        }
        std::vector<core::EvalResult> results =
            engine.evaluateMany(reqs);

        TablePrinter t(header);
        size_t i = 0;
        for (int th : row_threads) {
            std::vector<std::string> row = {std::to_string(th)};
            for (size_t bi = 0; bi < batches.size(); ++bi) {
                const auto& point = results[i++].point;
                row.push_back(point
                                  ? fmtDouble(point->qps, 0) + " [" +
                                        fmtDouble(point->result.tail_ms,
                                                  1) +
                                        "]"
                                  : "viol.");
            }
            t.addRow(row);
        }
        t.print();
        std::printf("\n");
    }
}

void
gpuGrid(core::EvalEngine& engine, const hw::ServerSpec& server,
        const model::Model& m, double sla_ms)
{
    sim::MeasureOptions mo = bench::benchSearchOptions().measure;
    std::printf("-- GPU Psp(M+D) (SLA %.0f ms): QPS [peak W] --\n",
                sla_ms);
    const std::vector<int> fusions = {0, 500, 1000, 2000, 4000, 6000};
    const std::vector<int> colocs = {1, 2, 3, 4};
    std::vector<std::string> header = {"coloc \\ fusion"};
    for (int f : fusions)
        header.push_back(f == 0 ? "none" : std::to_string(f));

    std::vector<core::EvalRequest> reqs;
    for (int g : colocs) {
        for (int f : fusions) {
            sched::SchedulingConfig cfg;
            cfg.mapping = sched::Mapping::GpuModelBased;
            cfg.gpu_threads = g;
            cfg.fusion_limit = f;
            cfg.cpu_threads = 2;
            reqs.push_back(
                bench::evalRequest(server, m, cfg, sla_ms, mo));
        }
    }
    std::vector<core::EvalResult> results = engine.evaluateMany(reqs);

    TablePrinter t(header);
    size_t i = 0;
    for (int g : colocs) {
        std::vector<std::string> row = {std::to_string(g)};
        for (size_t fi = 0; fi < fusions.size(); ++fi) {
            const core::EvalResult& res = results[i++];
            if (!res.valid) {
                row.push_back("invalid");
                continue;
            }
            const auto& point = res.point;
            row.push_back(
                point ? fmtDouble(point->qps, 0) + " [" +
                            fmtDouble(point->result.peak_power_w, 0) + "]"
                      : "viol.");
        }
        t.addRow(row);
    }
    t.print();
    std::printf("\n");
}

void
searchPath(const hw::ServerSpec& server, const model::Model& m,
           sched::Mapping mapping, double sla_ms)
{
    sched::SearchOptions opt = bench::benchSearchOptions();
    sched::SearchResult r =
        sched::gradientSearchMapping(server, m, mapping, sla_ms, opt);
    std::printf("-- gradient-search trace (%s, %d evals) --\n",
                sched::mappingName(mapping), r.evals);
    TablePrinter t({"Step", "Config", "QPS", "Tail (ms)", "Accepted"});
    int step = 0;
    for (const auto& s : r.trace) {
        t.addRow({std::to_string(step++), s.cfg.str(),
                  s.qps >= 0 ? fmtDouble(s.qps, 0) : "infeasible",
                  s.qps >= 0 ? fmtDouble(s.tail_ms, 1) : "-",
                  s.accepted ? "<= move" : ""});
    }
    t.print();
    if (r.best)
        std::printf("optimum: %s at %.0f QPS\n\n", r.best->str().c_str(),
                    r.best_qps);
}

}  // namespace

int
main()
{
    bench::banner("Figure 11",
                  "Model-based scheduling space + gradient search "
                  "(DLRM-RMC1)");

    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    const hw::ServerSpec& t2 = hw::serverSpec(hw::ServerType::T2);
    const hw::ServerSpec& t7 = hw::serverSpec(hw::ServerType::T7);
    core::EvalEngine engine;

    cpuGrid(engine, t2, m, 20.0);
    searchPath(t2, m, sched::Mapping::CpuModelBased, 20.0);

    model::Model small =
        model::buildModel(model::ModelId::DlrmRmc1, model::Variant::Small);
    gpuGrid(engine, t7, small, 20.0);
    searchPath(t7, small, sched::Mapping::GpuModelBased, 20.0);
    return 0;
}
