/**
 * @file
 * Perf trajectory of the evaluation engine: serial vs pooled vs
 * memoized herculesTaskSearch and EfficiencyTable construction.
 *
 * Reported per mode: wall time, distinct simulator measurements
 * (engine misses), cache hit rate — plus a bit-identity check of the
 * winning configuration/QPS against the serial path (the engine's
 * ordered reductions and per-candidate RNG streams guarantee it). The
 * warm-start + early-abort shortcuts are benchmarked separately since
 * they deliberately trade probe fidelity for simulation count.
 *
 * Results land in BENCH_search.json next to the binary.
 */
#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/profiler.h"
#include "sched/space.h"
#include "util/table.h"
#include "util/thread_pool.h"

using namespace hercules;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct ModeResult
{
    std::string name;
    double wall_ms = 0.0;
    int evals = 0;       ///< distinct simulator measurements paid for
    int cache_hits = 0;  ///< steps served from the memo
    uint64_t simulations = 0;
    double best_qps = 0.0;
    std::string best_cfg;
    bool identical_to_serial = false;

    double
    hitRate() const
    {
        int total = evals + cache_hits;
        return total > 0 ? static_cast<double>(cache_hits) / total : 0.0;
    }
};

ModeResult
runSearch(const char* name, const hw::ServerSpec& server,
          const model::Model& m, double sla_ms, sched::SearchOptions opt,
          core::EvalEngine& engine)
{
    opt.engine = &engine;
    core::EvalEngine::Stats before = engine.stats();
    Clock::time_point t0 = Clock::now();
    sched::SearchResult r =
        sched::herculesTaskSearch(server, m, sla_ms, opt);
    ModeResult out;
    out.name = name;
    out.wall_ms = msSince(t0);
    out.evals = r.evals;
    out.cache_hits = r.cache_hits;
    out.simulations = engine.stats().simulations - before.simulations;
    out.best_qps = r.best_qps;
    out.best_cfg = r.best ? r.best->key() : "(infeasible)";
    return out;
}

}  // namespace

int
main()
{
    bench::banner("Search speedup",
                  "Serial vs pooled vs memoized task-scheduling search "
                  "and efficiency-table build");

    int hw_threads = util::ThreadPool::hardwareThreads();
    std::printf("hardware threads: %d\n\n", hw_threads);

    model::Model m = model::buildModel(model::ModelId::DlrmRmc1);
    const hw::ServerSpec& server = hw::serverSpec(hw::ServerType::T2);
    double sla_ms = 20.0;
    sched::SearchOptions opt = bench::benchSearchOptions();

    std::printf("search space: %zu valid configs; the gradient search "
                "measures a fraction of them\n\n",
                sched::spaceSize(server, m, opt.space));

    // ---- herculesTaskSearch: serial / pooled / memoized ----------------
    sched::SearchOptions serial_opt = opt;
    serial_opt.eval.threads = 1;
    core::EvalEngine serial_engine(serial_opt.eval);
    ModeResult serial = runSearch("serial (1 thread)", server, m, sla_ms,
                                  serial_opt, serial_engine);
    serial.identical_to_serial = true;

    sched::SearchOptions pooled_opt = opt;
    pooled_opt.eval.threads = 0;  // all hardware threads
    core::EvalEngine pooled_engine(pooled_opt.eval);
    ModeResult pooled = runSearch("pooled", server, m, sla_ms, pooled_opt,
                                  pooled_engine);
    pooled.identical_to_serial = pooled.best_cfg == serial.best_cfg &&
                                 pooled.best_qps == serial.best_qps;

    // Same engine again: every step replays from the memo.
    ModeResult memo = runSearch("pooled + memoized", server, m, sla_ms,
                                pooled_opt, pooled_engine);
    memo.identical_to_serial = memo.best_cfg == serial.best_cfg &&
                               memo.best_qps == serial.best_qps;

    // Warm-start + early-abort: fewer simulations per measurement, at
    // the cost of slightly different probe placement (reported, not
    // required to be identical).
    sched::SearchOptions fast_opt = opt;
    fast_opt.eval.threads = 0;
    fast_opt.eval.warm_start = true;
    fast_opt.eval.abort_tail_factor = 8.0;
    fast_opt.eval.bisect_rel_tol = 0.05;
    core::EvalEngine fast_engine(fast_opt.eval);
    ModeResult fast = runSearch("pooled + shortcuts", server, m, sla_ms,
                                fast_opt, fast_engine);
    fast.identical_to_serial = fast.best_cfg == serial.best_cfg &&
                               fast.best_qps == serial.best_qps;

    TablePrinter t({"Mode", "Wall (ms)", "Evals", "Hits", "Hit rate",
                    "Sims", "Best QPS", "Identical"});
    for (const ModeResult* r : {&serial, &pooled, &memo, &fast}) {
        t.addRow({r->name, fmtDouble(r->wall_ms, 1),
                  std::to_string(r->evals), std::to_string(r->cache_hits),
                  fmtPercent(r->hitRate()),
                  std::to_string(r->simulations),
                  fmtDouble(r->best_qps, 1),
                  r->identical_to_serial ? "yes" : "no"});
    }
    t.print();

    double pool_speedup =
        pooled.wall_ms > 0.0 ? serial.wall_ms / pooled.wall_ms : 0.0;
    double memo_speedup =
        memo.wall_ms > 0.0 ? serial.wall_ms / memo.wall_ms : 0.0;
    std::printf("\nherculesTaskSearch speedup: %.2fx pooled, %.2fx "
                "memoized replay (target: >= 3x pooled on 4+ hardware "
                "threads)\n",
                pool_speedup, memo_speedup);

    // ---- EfficiencyTable build ----------------------------------------
    core::ProfilerOptions popt;
    popt.search = opt;
    popt.servers = {hw::ServerType::T1, hw::ServerType::T2,
                    hw::ServerType::T3};
    popt.models = {model::ModelId::DlrmRmc1, model::ModelId::MtWnd};
    if (!bench::fastMode())
        popt.models.push_back(model::ModelId::DlrmRmc2);

    popt.search.eval.threads = 1;
    Clock::time_point t0 = Clock::now();
    core::EfficiencyTable table_serial = core::offlineProfile(popt);
    double table_serial_ms = msSince(t0);

    popt.search.eval.threads = 0;
    t0 = Clock::now();
    core::EfficiencyTable table_pooled = core::offlineProfile(popt);
    double table_pooled_ms = msSince(t0);
    bool table_identical = table_serial == table_pooled;
    double table_speedup =
        table_pooled_ms > 0.0 ? table_serial_ms / table_pooled_ms : 0.0;

    std::printf("\nEfficiencyTable (%zu cells): %.0f ms serial, %.0f ms "
                "pooled (%.2fx), identical: %s\n",
                table_serial.size(), table_serial_ms, table_pooled_ms,
                table_speedup, table_identical ? "yes" : "no");

    // ---- JSON trajectory ----------------------------------------------
    FILE* f = std::fopen("BENCH_search.json", "w");
    if (f) {
        std::fprintf(f, "{\n");
        bench::writeJsonProvenance(f);
        std::fprintf(f, "  \"hardware_threads\": %d,\n", hw_threads);
        std::fprintf(f, "  \"search\": {\n");
        std::fprintf(f,
                     "    \"serial_ms\": %.2f,\n    \"pooled_ms\": %.2f,"
                     "\n    \"memoized_ms\": %.2f,\n",
                     serial.wall_ms, pooled.wall_ms, memo.wall_ms);
        std::fprintf(f,
                     "    \"pooled_speedup\": %.3f,\n    "
                     "\"memoized_speedup\": %.3f,\n",
                     pool_speedup, memo_speedup);
        std::fprintf(f,
                     "    \"evals\": %d,\n    \"memoized_hit_rate\": "
                     "%.4f,\n",
                     serial.evals, memo.hitRate());
        std::fprintf(f,
                     "    \"pooled_identical\": %s,\n    "
                     "\"memoized_identical\": %s,\n",
                     pooled.identical_to_serial ? "true" : "false",
                     memo.identical_to_serial ? "true" : "false");
        std::fprintf(f,
                     "    \"shortcut_sims\": %llu,\n    "
                     "\"baseline_sims\": %llu\n  },\n",
                     static_cast<unsigned long long>(fast.simulations),
                     static_cast<unsigned long long>(serial.simulations));
        std::fprintf(f, "  \"efficiency_table\": {\n");
        std::fprintf(f,
                     "    \"cells\": %zu,\n    \"serial_ms\": %.2f,\n"
                     "    \"pooled_ms\": %.2f,\n    \"speedup\": %.3f,\n"
                     "    \"identical\": %s\n  }\n}\n",
                     table_serial.size(), table_serial_ms,
                     table_pooled_ms, table_speedup,
                     table_identical ? "true" : "false");
        std::fclose(f);
        std::printf("\nwrote BENCH_search.json\n");
    }

    bool ok = pooled.identical_to_serial && memo.identical_to_serial &&
              table_identical;
    std::printf("\ndeterminism: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
